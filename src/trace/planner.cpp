#include "trace/planner.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/error.h"

namespace chronos::trace {

core::JobParams stage_job_params(const mapreduce::StageSpec& stage,
                                 double deadline, const PlannerConfig& config,
                                 core::Strategy strategy) {
  core::JobParams params;
  params.num_tasks = stage.num_tasks;
  params.deadline = deadline;
  params.t_min = stage.t_min;
  params.beta = stage.beta;
  params.tau_est = strategy == core::Strategy::kClone
                       ? 0.0
                       : config.tau_est_factor * stage.t_min;
  params.tau_kill = config.tau_kill_factor * stage.t_min;
  params.phi_est = core::default_phi_est(params);
  return params;
}

core::Economics stage_economics(const mapreduce::StageSpec& stage,
                                double deadline, const PlannerConfig& config,
                                double price) {
  core::Economics econ;
  econ.price = price;
  econ.theta = config.theta;
  if (config.r_min_from_baseline) {
    core::JobParams baseline;
    baseline.num_tasks = stage.num_tasks;
    baseline.deadline = deadline;
    baseline.t_min = stage.t_min;
    baseline.beta = stage.beta;
    baseline.tau_est = 0.0;
    baseline.tau_kill = 0.0;
    baseline.phi_est = 0.0;
    econ.r_min = core::pocd_no_speculation(baseline);
  } else {
    econ.r_min = config.r_min;
  }
  return econ;
}

core::JobParams to_job_params(const mapreduce::JobSpec& spec,
                              const PlannerConfig& config,
                              core::Strategy strategy) {
  return stage_job_params(spec.stage(0), spec.deadline, config, strategy);
}

core::Economics to_economics(const mapreduce::JobSpec& spec,
                             const PlannerConfig& config, double price) {
  return stage_economics(spec.stage(0), spec.deadline, config, price);
}

bool has_analytic_strategy(strategies::PolicyKind kind) {
  switch (kind) {
    case strategies::PolicyKind::kClone:
    case strategies::PolicyKind::kSRestart:
    case strategies::PolicyKind::kSResume:
      return true;
    default:
      return false;
  }
}

core::Strategy analytic_strategy(strategies::PolicyKind kind) {
  switch (kind) {
    case strategies::PolicyKind::kClone:
      return core::Strategy::kClone;
    case strategies::PolicyKind::kSRestart:
      return core::Strategy::kSpeculativeRestart;
    case strategies::PolicyKind::kSResume:
      return core::Strategy::kSpeculativeResume;
    default:
      break;
  }
  CHRONOS_EXPECTS(false, "policy has no analytic strategy");
}

strategies::PolicyKind policy_of(core::Strategy strategy) {
  switch (strategy) {
    case core::Strategy::kClone:
      return strategies::PolicyKind::kClone;
    case core::Strategy::kSpeculativeRestart:
      return strategies::PolicyKind::kSRestart;
    case core::Strategy::kSpeculativeResume:
      return strategies::PolicyKind::kSResume;
  }
  CHRONOS_EXPECTS(false, "unknown analytic strategy");
}

core::OptimizationResult plan_spec(mapreduce::JobSpec& spec,
                                   strategies::PolicyKind policy,
                                   const PlannerConfig& config, double price) {
  if (spec.num_stages() > 1) {
    return plan_staged_spec(spec, policy, config, price).stages.front();
  }
  spec.price = price;
  auto& st = spec.stage(0);

  if (!has_analytic_strategy(policy)) {
    st.r = 0;
    st.tau_est = config.tau_est_factor * st.t_min;
    st.tau_kill = config.tau_kill_factor * st.t_min;
    return core::OptimizationResult{};
  }

  const core::Strategy strategy = analytic_strategy(policy);
  const auto params = to_job_params(spec, config, strategy);
  const auto econ = to_economics(spec, config, spec.price);
  auto result = core::optimize(strategy, params, econ, config.optimizer);
  st.tau_est = params.tau_est;
  st.tau_kill = params.tau_kill;
  st.r = result.feasible ? result.r_opt : 1;  // fall back to one copy
  return result;
}

core::OptimizationResult plan_job(TracedJob& job,
                                  strategies::PolicyKind policy,
                                  const PlannerConfig& config,
                                  const SpotPriceModel& prices) {
  return plan_spec(job.spec, policy, config,
                   prices.price_at(job.submit_time));
}

void plan_trace(std::vector<TracedJob>& jobs, strategies::PolicyKind policy,
                const PlannerConfig& config, const SpotPriceModel& prices) {
  for (auto& job : jobs) {
    plan_job(job, policy, config, prices);
  }
}

double expected_stage_makespan(int num_tasks, double t_min, double beta) {
  CHRONOS_EXPECTS(num_tasks >= 1, "num_tasks must be >= 1");
  CHRONOS_EXPECTS(t_min > 0.0 && beta > 1.0,
                  "makespan requires t_min > 0 and beta > 1");
  // E[max of N] for Pareto via the Beta-function identity
  // E[max] = t_min N B(N, 1 - 1/beta).
  const double n = static_cast<double>(num_tasks);
  const double a = 1.0 - 1.0 / beta;
  return t_min * std::exp(std::lgamma(n + 1.0) + std::lgamma(a) -
                          std::lgamma(n + a));
}

std::vector<double> critical_path_split(const mapreduce::JobSpec& spec) {
  const int stages = spec.num_stages();
  std::vector<double> span(static_cast<std::size_t>(stages));
  std::vector<double> finish(static_cast<std::size_t>(stages));
  double longest = 0.0;
  for (int s = 0; s < stages; ++s) {
    const auto& st = spec.stage(s);
    span[static_cast<std::size_t>(s)] =
        expected_stage_makespan(st.num_tasks, st.t_min, st.beta);
    // Stage indices are a topological order (deps reference earlier
    // stages), so one forward pass chains expected finish times.
    double start = 0.0;
    for (const int dep : spec.resolved_deps(s)) {
      start = std::max(start, finish[static_cast<std::size_t>(dep)]);
    }
    finish[static_cast<std::size_t>(s)] =
        start + span[static_cast<std::size_t>(s)];
    longest = std::max(longest, finish[static_cast<std::size_t>(s)]);
  }
  std::vector<double> deadlines(static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    deadlines[static_cast<std::size_t>(s)] =
        spec.deadline * (span[static_cast<std::size_t>(s)] / longest);
  }
  return deadlines;
}

namespace {

bool same_shape(const core::JobParams& a, const core::JobParams& b) {
  return a.num_tasks == b.num_tasks && a.deadline == b.deadline &&
         a.t_min == b.t_min && a.beta == b.beta && a.tau_est == b.tau_est &&
         a.tau_kill == b.tau_kill && a.phi_est == b.phi_est;
}

}  // namespace

StagedPlan plan_staged_spec(mapreduce::JobSpec& spec,
                            strategies::PolicyKind policy,
                            const PlannerConfig& config, double price) {
  StagedPlan plan;
  const int stages = spec.num_stages();
  if (stages == 1) {
    // Single-stage jobs take the historical path (the whole job deadline,
    // no split arithmetic) so existing map-only plans stay bit-identical.
    plan.stages.push_back(plan_spec(spec, policy, config, price));
    plan.stage_deadlines.push_back(spec.deadline);
    return plan;
  }
  spec.price = price;
  plan.stage_deadlines = critical_path_split(spec);
  // Feasibility floor: randomly sampled DAGs can be so deadline-tight that
  // a stage's proportional share drops below t_min + tau_est, which no
  // valid analytic JobParams can express. Clamp the share to that floor —
  // the stage is effectively infeasible either way, and the optimizer then
  // reports it as such instead of rejecting the parameters outright. The
  // floor depends only on t_min, so same-shape stages keep equal shares.
  for (int s = 0; s < stages; ++s) {
    const double floor = spec.stage(s).t_min *
                         (1.0 + config.tau_est_factor) * (1.0 + 1e-9);
    plan.stage_deadlines[static_cast<std::size_t>(s)] =
        std::max(plan.stage_deadlines[static_cast<std::size_t>(s)], floor);
  }
  plan.stages.resize(static_cast<std::size_t>(stages));

  if (!has_analytic_strategy(policy)) {
    for (auto& st : spec.stages) {
      st.r = 0;
      st.tau_est = config.tau_est_factor * st.t_min;
      st.tau_kill = config.tau_kill_factor * st.t_min;
    }
    return plan;
  }

  const core::Strategy strategy = analytic_strategy(policy);
  // One optimize() per stage (§III optimizes stage PoCDs separately). The
  // strategy-independent constants are shared across same-shape stages —
  // identical (num_tasks, t_min, beta) implies identical spans and hence
  // identical deadline shares, so their JobParams match bit-for-bit.
  std::vector<core::JobParams> params(static_cast<std::size_t>(stages));
  std::vector<std::unique_ptr<core::SharedAnalytics>> analytics(
      static_cast<std::size_t>(stages));
  std::vector<int> shape_of(static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    params[static_cast<std::size_t>(s)] = stage_job_params(
        spec.stage(s), plan.stage_deadlines[static_cast<std::size_t>(s)],
        config, strategy);
    int owner = s;
    for (int q = 0; q < s; ++q) {
      if (same_shape(params[static_cast<std::size_t>(q)],
                     params[static_cast<std::size_t>(s)])) {
        owner = shape_of[static_cast<std::size_t>(q)];
        break;
      }
    }
    shape_of[static_cast<std::size_t>(s)] = owner;
    if (owner == s) {
      analytics[static_cast<std::size_t>(s)] =
          std::make_unique<core::SharedAnalytics>(
              params[static_cast<std::size_t>(s)]);
    }
  }
  for (int s = 0; s < stages; ++s) {
    auto& st = spec.stage(s);
    const auto econ = stage_economics(
        st, plan.stage_deadlines[static_cast<std::size_t>(s)], config,
        spec.price);
    const core::AnalyticContext context(
        strategy,
        *analytics[static_cast<std::size_t>(
            shape_of[static_cast<std::size_t>(s)])],
        econ);
    auto& result = plan.stages[static_cast<std::size_t>(s)];
    result = core::optimize(context, config.optimizer);
    st.tau_est = params[static_cast<std::size_t>(s)].tau_est;
    st.tau_kill = params[static_cast<std::size_t>(s)].tau_kill;
    st.r = result.feasible ? result.r_opt : 1;  // fall back to one copy
  }
  return plan;
}

StagedPlan plan_staged_job(TracedJob& job, strategies::PolicyKind policy,
                           const PlannerConfig& config,
                           const SpotPriceModel& prices) {
  return plan_staged_spec(job.spec, policy, config,
                          prices.price_at(job.submit_time));
}

}  // namespace chronos::trace
