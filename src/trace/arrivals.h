// Arrival processes for the open-system simulator: job submission streams
// rather than a fixed job list.
//
// Three generators cover the production cases the ROADMAP names:
//  - Poisson: memoryless arrivals at a constant mean rate (the §VII-B trace
//    model, but unbounded in time);
//  - diurnal: a nonhomogeneous Poisson process whose rate swings
//    sinusoidally over a configurable period (day/night traffic), sampled
//    exactly by Lewis-Shedler thinning so count statistics stay Poisson;
//  - trace: replay of explicit submission timestamps loaded from a file
//    (one time per line), for measured production traces.
//
// All processes draw from a caller-owned Rng, so a run's arrival stream is
// a pure function of (spec, seed) — the same determinism contract as the
// rest of the stack.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace chronos::trace {

enum class ArrivalKind {
  kPoisson,  ///< homogeneous Poisson at `rate`
  kDiurnal,  ///< rate * (1 + amplitude * sin(2 pi t / period))
  kTrace,    ///< replay of `times`
};

/// Declarative description of an arrival stream. Parsed from the manifest
/// [arrivals] section and embedded in sim::OpenSystemConfig.
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate = 0.1;          ///< mean arrivals per second (Poisson/diurnal)
  double amplitude = 0.5;     ///< diurnal swing, in [0, 1)
  double period = 86400.0;    ///< diurnal period in seconds (> 0)
  std::vector<double> times;  ///< trace replay: nondecreasing, finite, >= 0

  /// Throws PreconditionError on any invalid field for the chosen kind.
  void validate() const;
};

/// A stream of arrival instants. next_after(now) returns the first arrival
/// strictly after `now`, or +infinity when the stream is exhausted (only
/// trace streams exhaust). Calls must be monotone in `now` — the engine
/// always passes the previous arrival it consumed.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual double next_after(double now, Rng& rng) = 0;
};

/// Builds the process `spec` describes (spec is validated first).
std::unique_ptr<ArrivalProcess> make_arrival_process(const ArrivalSpec& spec);

/// Parses trace-replay timestamps: one number per line, '#'/';' full-line
/// comments and blank lines ignored. Throws PreconditionError (with the
/// line number) on malformed numbers, negatives, non-finite values, or a
/// decreasing sequence.
std::vector<double> parse_arrival_times(const std::string& text);

/// Reads and parses an arrival-times file.
std::vector<double> load_arrival_times(const std::string& path);

}  // namespace chronos::trace
