#include "common/numeric.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <system_error>

#include "common/error.h"

namespace chronos::numeric {

namespace {

struct SimpsonEstimate {
  double value = 0.0;
  double fa = 0.0;
  double fm = 0.0;
  double fb = 0.0;
};

SimpsonEstimate simpson(double a, double b, double fa, double fm, double fb) {
  SimpsonEstimate est;
  est.fa = fa;
  est.fm = fm;
  est.fb = fb;
  est.value = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  return est;
}

double adaptive(const std::function<double(double)>& f, double a, double b,
                double fa, double fm, double fb, double whole, double tol,
                int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  const double delta = left + right - whole;
  // 15 = (4^2 - 1): classic Richardson error factor for Simpson's rule.
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1) +
         adaptive(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol) {
  CHRONOS_EXPECTS(a <= b, "integration interval must satisfy a <= b");
  if (a == b) {
    return 0.0;
  }
  const double fa = f(a);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  const double fb = f(b);
  const auto whole = simpson(a, b, fa, fm, fb);
  return adaptive(f, a, b, fa, fm, fb, whole.value, tol, 52);
}

double integrate_to_infinity(const std::function<double(double)>& f, double a,
                             double tol) {
  // Substitute x = a + t/(1-t), dx = dt/(1-t)^2, mapping [a, inf) to [0, 1).
  const auto g = [&f, a](double t) {
    const double one_minus = 1.0 - t;
    if (one_minus <= 0.0) {
      return 0.0;  // integrand must vanish at infinity for convergence
    }
    const double x = a + t / one_minus;
    return f(x) / (one_minus * one_minus);
  };
  // Stop just short of t = 1; the decay requirement makes the remainder
  // negligible relative to tol.
  return integrate(g, 0.0, 1.0 - 1e-12, tol);
}

double derivative(const std::function<double(double)>& f, double x, double h) {
  CHRONOS_EXPECTS(h > 0.0, "derivative step must be positive");
  return (f(x + h) - f(x - h)) / (2.0 * h);
}

double second_derivative(const std::function<double(double)>& f, double x,
                         double h) {
  CHRONOS_EXPECTS(h > 0.0, "second_derivative step must be positive");
  return (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h);
}

double golden_section_max(const std::function<double(double)>& f, double lo,
                          double hi, double tol) {
  CHRONOS_EXPECTS(lo <= hi, "golden_section_max requires lo <= hi");
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo;
  double b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c);
  double fd = f(d);
  while (b - a > tol) {
    if (fc >= fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

long long ternary_search_max_int(const std::function<double(long long)>& f,
                                 long long lo, long long hi) {
  CHRONOS_EXPECTS(lo <= hi, "ternary_search_max_int requires lo <= hi");
  while (hi - lo > 2) {
    const long long m1 = lo + (hi - lo) / 3;
    const long long m2 = hi - (hi - lo) / 3;
    if (f(m1) < f(m2)) {
      lo = m1 + 1;
    } else {
      hi = m2 - 1;
    }
  }
  long long best = lo;
  double best_value = f(lo);
  for (long long x = lo + 1; x <= hi; ++x) {
    const double v = f(x);
    if (v > best_value) {
      best_value = v;
      best = x;
    }
  }
  return best;
}

bool approx_equal(double a, double b, double tol) {
  return std::abs(a - b) <=
         tol * std::max({1.0, std::abs(a), std::abs(b)});
}

std::string format_double(double v) {
  if (std::isnan(v)) {
    return "nan";
  }
  if (std::isinf(v)) {
    return v < 0 ? "-inf" : "inf";
  }
  char buffer[40];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), v);
  CHRONOS_ENSURES(result.ec == std::errc(), "to_chars failed");
  return std::string(buffer, result.ptr);
}

std::string format_double_fixed(double v, int precision) {
  CHRONOS_EXPECTS(precision >= 0, "precision must be >= 0");
  if (std::isnan(v)) {
    return "nan";
  }
  if (std::isinf(v)) {
    return v < 0 ? "-inf" : "+inf";
  }
  // Fixed form of a large magnitude needs one char per integer digit; fall
  // back to the shortest form in the (never meaningful) overflow case.
  char buffer[512];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), v,
                                    std::chars_format::fixed, precision);
  if (result.ec != std::errc()) {
    return format_double(v);
  }
  return std::string(buffer, result.ptr);
}

std::string format_double_g(double v) {
  if (std::isnan(v)) {
    return "nan";
  }
  if (std::isinf(v)) {
    return v < 0 ? "-inf" : "inf";
  }
  char buffer[40];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), v,
                                    std::chars_format::general, 6);
  CHRONOS_ENSURES(result.ec == std::errc(), "to_chars failed");
  return std::string(buffer, result.ptr);
}

bool parse_double(std::string_view text, double& out) {
  if (!text.empty() && text.front() == '+') {
    text.remove_prefix(1);
  }
  if (text.empty()) {
    return false;
  }
  double parsed = 0.0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), parsed);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    return false;
  }
  out = parsed;
  return true;
}

void append_hex_double(std::string& out, double v) {
  char buffer[48];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), v,
                                    std::chars_format::hex);
  CHRONOS_ENSURES(result.ec == std::errc(), "hex to_chars failed");
  out.append(buffer, result.ptr);
}

bool parse_hex_double(std::string_view text, double& out) {
  if (text.empty()) {
    return false;
  }
  bool negative = false;
  if (text.front() == '-') {
    negative = true;
    text.remove_prefix(1);
  }
  if (text == "inf" || text == "nan") {
    out = text == "inf" ? std::numeric_limits<double>::infinity()
                        : std::numeric_limits<double>::quiet_NaN();
  } else {
    const auto result = std::from_chars(
        text.data(), text.data() + text.size(), out, std::chars_format::hex);
    if (result.ec != std::errc() ||
        result.ptr != text.data() + text.size()) {
      return false;
    }
  }
  if (negative) {
    out = -out;
  }
  return true;
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buffer[17];
  const auto result =
      std::to_chars(buffer, buffer + sizeof(buffer), value, 16);
  return std::string(buffer, result.ptr);
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) {
    return false;
  }
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return result.ec == std::errc() &&
         result.ptr == text.data() + text.size();
}

}  // namespace chronos::numeric
