#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace chronos {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // Top 53 bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CHRONOS_EXPECTS(lo <= hi, "uniform range must satisfy lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CHRONOS_EXPECTS(lo <= hi, "uniform_int range must satisfy lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = (*this)();
  while (v >= limit) {
    v = (*this)();
  }
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform_complement() {
  // 1 - uniform() is in (0, 1], so logs and negative powers stay finite.
  return 1.0 - uniform();
}

double Rng::exponential(double rate) {
  CHRONOS_EXPECTS(rate > 0.0, "exponential rate must be positive");
  return -std::log(uniform_complement()) / rate;
}

double Rng::normal() {
  // Box–Muller; discard the second variate to keep the stream stateless.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double sigma) {
  CHRONOS_EXPECTS(sigma >= 0.0, "normal sigma must be non-negative");
  return mean + sigma * normal();
}

double Rng::pareto(double t_min, double beta) {
  CHRONOS_EXPECTS(t_min > 0.0, "pareto t_min must be positive");
  CHRONOS_EXPECTS(beta > 0.0, "pareto beta must be positive");
  return t_min * std::pow(uniform_complement(), -1.0 / beta);
}

bool Rng::bernoulli(double p) {
  CHRONOS_EXPECTS(p >= 0.0 && p <= 1.0, "bernoulli p must lie in [0, 1]");
  return uniform() < p;
}

Rng Rng::split() {
  // Derive a fresh seed from the current stream; splitmix64 reseeding gives
  // decorrelated state words.
  return Rng(split_seed());
}

std::uint64_t Rng::split_seed() { return (*this)(); }

ParetoSampler::ParetoSampler(double t_min, double beta)
    : t_min_(t_min), beta_(beta), neg_inv_beta_(-1.0 / beta) {
  CHRONOS_EXPECTS(t_min > 0.0, "pareto t_min must be positive");
  CHRONOS_EXPECTS(beta > 0.0, "pareto beta must be positive");
}

ExponentialSampler::ExponentialSampler(double rate) : rate_(rate) {
  CHRONOS_EXPECTS(rate > 0.0, "exponential rate must be positive");
}

}  // namespace chronos
