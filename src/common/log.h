// Minimal leveled logger. Simulation and bench binaries log progress at
// Info; tests run with the logger silenced.
#pragma once

#include <sstream>
#include <string>

namespace chronos::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; messages below it are dropped.
void set_level(Level level);

/// Current global minimum level.
Level level();

/// Enables (or disables) a per-line context prefix: a UTC ISO-8601
/// millisecond timestamp plus a small sequential thread id, e.g.
///   [2026-08-08T12:34:56.789Z t1] [INFO] sweep: 4/6 cells
/// Off by default — the bare `[INFO] message` format is unchanged unless a
/// binary opts in (sweeprun --progress does).
void set_prefix(bool enabled);

/// Whether the timestamp/thread prefix is currently enabled.
bool prefix();

/// Emits one line at `level` (thread-safe, single write to stderr).
void write(Level level, const std::string& message);

namespace detail {

class LineStream {
 public:
  explicit LineStream(Level level) : level_(level) {}
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;
  ~LineStream() { write(level_, os_.str()); }

  template <typename T>
  LineStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace chronos::log

#define CHRONOS_LOG(lvl)                                      \
  if (::chronos::log::Level::lvl < ::chronos::log::level()) { \
  } else                                                      \
    ::chronos::log::detail::LineStream(::chronos::log::Level::lvl)
