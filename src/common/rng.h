// Deterministic pseudo-random number generation for simulations.
//
// A self-contained xoshiro256++ generator is used instead of std::mt19937 so
// that streams are (a) fast, (b) reproducible across standard libraries, and
// (c) cheaply splittable into independent sub-streams (one per node / job),
// which discrete-event simulations need to keep runs comparable when the
// event interleaving changes.
#pragma once

#include <array>
#include <cstdint>

namespace chronos {

/// xoshiro256++ PRNG (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential variate with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Standard normal variate (Box–Muller, one value per call).
  double normal();

  /// Normal variate with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Pareto(t_min, beta) variate via inverse CDF. Requires t_min > 0, beta > 0.
  double pareto(double t_min, double beta);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Returns a generator seeded from this stream, statistically independent
  /// for simulation purposes (long jump-free split via fresh splitmix chain).
  Rng split();

  /// Seed for a child generator, equivalent to the seed split() would use.
  /// Lets callers derive reproducible per-worker seed tables up front (the
  /// sweep engine assigns one seed per cell replication this way, so results
  /// are identical for any thread count).
  std::uint64_t split_seed();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace chronos
