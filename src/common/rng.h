// Deterministic pseudo-random number generation for simulations.
//
// A self-contained xoshiro256++ generator is used instead of std::mt19937 so
// that streams are (a) fast, (b) reproducible across standard libraries, and
// (c) cheaply splittable into independent sub-streams (one per node / job),
// which discrete-event simulations need to keep runs comparable when the
// event interleaving changes.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace chronos {

/// xoshiro256++ PRNG (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential variate with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Standard normal variate (Box–Muller, one value per call).
  double normal();

  /// Normal variate with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Pareto(t_min, beta) variate via inverse CDF. Requires t_min > 0, beta > 0.
  double pareto(double t_min, double beta);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Returns a generator seeded from this stream, statistically independent
  /// for simulation purposes (long jump-free split via fresh splitmix chain).
  Rng split();

  /// Seed for a child generator, equivalent to the seed split() would use.
  /// Lets callers derive reproducible per-worker seed tables up front (the
  /// sweep engine assigns one seed per cell replication this way, so results
  /// are identical for any thread count).
  std::uint64_t split_seed();

 private:
  friend class ParetoSampler;
  friend class ExponentialSampler;

  /// Uniform in (0, 1]; the complement of uniform(), shared by the
  /// inverse-CDF samplers so their streams match the Rng::* methods bit for
  /// bit.
  double uniform_complement();

  std::array<std::uint64_t, 4> state_;
};

/// Pre-validated Pareto(t_min, beta) sampler for hot loops.
///
/// `Rng::pareto` re-validates its parameters and re-derives the exponent
/// -1/beta on every draw; constructing a `ParetoSampler` once outside the
/// loop pays both costs a single time. Draws consume exactly one uniform and
/// are bit-identical to `rng.pareto(t_min, beta)` for the same stream
/// position, so call sites can be ported without disturbing seeded results.
class ParetoSampler {
 public:
  /// Requires t_min > 0 and beta > 0 (checked once, here).
  ParetoSampler(double t_min, double beta);

  double t_min() const { return t_min_; }
  double beta() const { return beta_; }

  /// One Pareto(t_min, beta) variate via inverse CDF.
  double operator()(Rng& rng) const {
    return t_min_ * std::pow(rng.uniform_complement(), neg_inv_beta_);
  }

 private:
  double t_min_;
  double beta_;
  double neg_inv_beta_;  ///< -1/beta, derived once at construction
};

/// Pre-validated exponential sampler (mean 1/rate); the analogue of
/// `ParetoSampler` for `Rng::exponential`. Bit-identical to
/// `rng.exponential(rate)` at the same stream position.
class ExponentialSampler {
 public:
  /// Requires rate > 0 (checked once, here).
  explicit ExponentialSampler(double rate);

  double rate() const { return rate_; }

  double operator()(Rng& rng) const {
    return -std::log(rng.uniform_complement()) / rate_;
  }

 private:
  double rate_;
};

}  // namespace chronos
