#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace chronos::log {

namespace {

std::atomic<Level> g_level{Level::kInfo};
std::atomic<bool> g_prefix{false};
std::mutex g_mutex;

const char* name(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

/// Small sequential thread id (1, 2, ...) in thread-creation-first-log
/// order; std::thread::id values are opaque and noisy in a log line.
unsigned thread_ordinal() {
  static std::atomic<unsigned> next{1};
  thread_local const unsigned ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// "[2026-08-08T12:34:56.789Z t3] " — UTC, millisecond precision.
/// gmtime_r + snprintf, so the result is locale-independent.
void format_prefix(char* out, std::size_t out_size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  std::snprintf(out, out_size, "[%04d-%02d-%02dT%02d:%02d:%02d.%03dZ t%u] ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(ms),
                thread_ordinal());
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_prefix(bool enabled) {
  g_prefix.store(enabled, std::memory_order_relaxed);
}

bool prefix() { return g_prefix.load(std::memory_order_relaxed); }

void write(Level lvl, const std::string& message) {
  if (lvl < level()) {
    return;
  }
  char stamp[48];
  stamp[0] = '\0';
  if (prefix()) {
    format_prefix(stamp, sizeof(stamp));
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s[%s] %s\n", stamp, name(lvl), message.c_str());
}

}  // namespace chronos::log
