// Numerical routines used by the analytic core: adaptive quadrature (finite
// and semi-infinite intervals), numerical derivatives, and searches over
// unimodal functions.
//
// These are deliberately small, dependency-free implementations tuned for the
// smooth, monotone integrands that arise from Pareto tail expressions
// (Theorem 4 of the paper).
#pragma once

#include <functional>

namespace chronos::numeric {

/// Target absolute tolerance used by default across the analytic core.
inline constexpr double kDefaultTol = 1e-10;

/// Adaptive Simpson integration of `f` over the finite interval [a, b].
/// Requires a <= b and f finite on [a, b].
double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol = kDefaultTol);

/// Integration of `f` over [a, +inf). `f` must decay at least like x^{-p}
/// with p > 1 for convergence; the tail is mapped onto (0, 1] with the
/// substitution x = a + t/(1 - t).
double integrate_to_infinity(const std::function<double(double)>& f, double a,
                             double tol = kDefaultTol);

/// Central-difference first derivative of `f` at `x` with step `h`.
double derivative(const std::function<double(double)>& f, double x,
                  double h = 1e-5);

/// Central second derivative of `f` at `x` with step `h`.
double second_derivative(const std::function<double(double)>& f, double x,
                         double h = 1e-4);

/// Maximizes a unimodal function over the continuous interval [lo, hi] by
/// golden-section search; returns the argmax. Requires lo <= hi.
double golden_section_max(const std::function<double(double)>& f, double lo,
                          double hi, double tol = 1e-8);

/// Maximizes a unimodal function over the integers in [lo, hi] by ternary
/// search; returns the integer argmax. Requires lo <= hi.
long long ternary_search_max_int(const std::function<double(long long)>& f,
                                 long long lo, long long hi);

/// True when |a - b| <= tol * max(1, |a|, |b|).
bool approx_equal(double a, double b, double tol = 1e-9);

}  // namespace chronos::numeric
