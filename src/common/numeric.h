// Numerical routines used by the analytic core: adaptive quadrature (finite
// and semi-infinite intervals), numerical derivatives, and searches over
// unimodal functions.
//
// These are deliberately small, dependency-free implementations tuned for the
// smooth, monotone integrands that arise from Pareto tail expressions
// (Theorem 4 of the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace chronos::numeric {

/// Target absolute tolerance used by default across the analytic core.
inline constexpr double kDefaultTol = 1e-10;

/// Adaptive Simpson integration of `f` over the finite interval [a, b].
/// Requires a <= b and f finite on [a, b].
double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol = kDefaultTol);

/// Integration of `f` over [a, +inf). `f` must decay at least like x^{-p}
/// with p > 1 for convergence; the tail is mapped onto (0, 1] with the
/// substitution x = a + t/(1 - t).
double integrate_to_infinity(const std::function<double(double)>& f, double a,
                             double tol = kDefaultTol);

/// Central-difference first derivative of `f` at `x` with step `h`.
double derivative(const std::function<double(double)>& f, double x,
                  double h = 1e-5);

/// Central second derivative of `f` at `x` with step `h`.
double second_derivative(const std::function<double(double)>& f, double x,
                         double h = 1e-4);

/// Maximizes a unimodal function over the continuous interval [lo, hi] by
/// golden-section search; returns the argmax. Requires lo <= hi.
double golden_section_max(const std::function<double(double)>& f, double lo,
                          double hi, double tol = 1e-8);

/// Maximizes a unimodal function over the integers in [lo, hi] by ternary
/// search; returns the integer argmax. Requires lo <= hi.
long long ternary_search_max_int(const std::function<double(long long)>& f,
                                 long long lo, long long hi);

/// True when |a - b| <= tol * max(1, |a|, |b|).
bool approx_equal(double a, double b, double tol = 1e-9);

// --- locale-independent decimal formatting ---------------------------------
//
// snprintf/strtod honour the global C locale's decimal separator, so report
// bytes (and manifest parsing) would change under e.g. a ","-decimal locale.
// These helpers are built on std::to_chars / std::from_chars, which always
// use '.', making every emitted report byte-identical regardless of locale.

/// Shortest decimal form that parses back to exactly `v` ("1e-06", "0.3").
/// Non-finite values render as "inf" / "-inf" / "nan".
std::string format_double(double v);

/// Fixed-point form with `precision` fractional digits, like printf %.*f.
/// Non-finite values render as "+inf" / "-inf" / "nan". Requires
/// precision >= 0.
std::string format_double_fixed(double v, int precision);

/// Six-significant-digit general form, like printf %g ("1e-06", "0.333333").
std::string format_double_g(double v);

/// Parses the entire string as a decimal double (also accepts "inf"/"nan"
/// and a leading '+'). Returns false when the text is empty, has trailing
/// characters, or does not parse.
bool parse_double(std::string_view text, double& out);

// --- bit-exact wire encoding helpers ---------------------------------------
//
// Shared by the checkpoint journal and the fabric wire protocol so that both
// text formats agree byte-for-byte on how a double and a checksum look.

/// Appends the exact textual form of a double: hex float via to_chars
/// ("1.4p+1"), with "inf"/"-inf"/"nan" for non-finite values.
void append_hex_double(std::string& out, double v);

/// Parses a hex-float field exactly as append_hex_double writes it. Returns
/// false when the text is empty, malformed, or has trailing characters.
bool parse_hex_double(std::string_view text, double& out);

/// 64-bit FNV-1a hash of `text` (checksums for journal/protocol lines).
std::uint64_t fnv1a(std::string_view text);

/// Lower-case hex form of a 64-bit value, no leading zeros ("0" for 0).
std::string hex64(std::uint64_t value);

/// Parses an unsigned decimal integer field; false on empty/trailing/bad.
bool parse_u64(std::string_view text, std::uint64_t& out);

}  // namespace chronos::numeric
