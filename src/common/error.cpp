#include "common/error.h"

#include <sstream>

namespace chronos::detail {

namespace {

std::string format(const char* kind, const char* expr, const std::string& msg,
                   std::source_location loc) {
  std::ostringstream os;
  os << kind << " violated: (" << expr << ") at " << loc.file_name() << ':'
     << loc.line() << " in " << loc.function_name();
  if (!msg.empty()) {
    os << " — " << msg;
  }
  return os.str();
}

}  // namespace

void throw_precondition(const char* expr, const std::string& msg,
                        std::source_location loc) {
  throw PreconditionError(format("precondition", expr, msg, loc));
}

void throw_invariant(const char* expr, const std::string& msg,
                     std::source_location loc) {
  throw InvariantError(format("invariant", expr, msg, loc));
}

}  // namespace chronos::detail
