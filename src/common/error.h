// Error-handling primitives shared by all Chronos modules.
//
// Follows the C++ Core Guidelines: preconditions are checked with an
// expectation macro that throws (so tests can observe violations), and
// invariant breakage inside the library is reported with rich context.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace chronos {

/// Thrown when a caller violates a documented precondition of a public API.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails; indicates a library bug.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] void throw_precondition(const char* expr, const std::string& msg,
                                     std::source_location loc);
[[noreturn]] void throw_invariant(const char* expr, const std::string& msg,
                                  std::source_location loc);

}  // namespace detail

}  // namespace chronos

/// Validate a documented precondition of a public entry point.
#define CHRONOS_EXPECTS(cond, msg)                                    \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::chronos::detail::throw_precondition(                          \
          #cond, (msg), std::source_location::current());             \
    }                                                                 \
  } while (false)

/// Validate an internal invariant; failure indicates a bug in Chronos.
#define CHRONOS_ENSURES(cond, msg)                                    \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::chronos::detail::throw_invariant(                             \
          #cond, (msg), std::source_location::current());             \
    }                                                                 \
  } while (false)
