// Byte transport of the sweep fabric: line-oriented streams over
// unix-domain or TCP sockets.
//
// Endpoints are spelled `unix:PATH`, `tcp:HOST:PORT`, or a bare filesystem
// path (shorthand for `unix:PATH`). `tcp:HOST:0` binds an ephemeral port;
// Listener::address() reports the resolved one.
//
// Streams are blocking sockets driven with poll(): send_line appends the
// newline and writes it out whole; recv_line returns one complete line
// (newline stripped), a timeout, or closed. A partial line still buffered
// when the peer disconnects — the torn tail of a crashed worker — is
// dropped, mirroring how the checkpoint journal ignores a torn last line.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace chronos::fabric {

/// Parsed endpoint. `port` is meaningful only when `tcp` is set.
struct Endpoint {
  bool tcp = false;
  std::string path_or_host;
  int port = 0;
};

/// Parses `unix:PATH` / `tcp:HOST:PORT` / bare-path endpoint syntax.
/// Throws PreconditionError on an empty path, a bad port, or an
/// over-long unix path.
Endpoint parse_endpoint(const std::string& spec);

/// Canonical display form ("unix:/tmp/x.sock", "tcp:127.0.0.1:9000").
std::string endpoint_to_string(const Endpoint& endpoint);

/// One connected byte stream, line-framed.
class Stream {
 public:
  /// Takes ownership of a connected socket fd.
  explicit Stream(int fd);
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  enum class Recv {
    kLine,     ///< a complete line was returned
    kTimeout,  ///< no complete line within the timeout
    kClosed,   ///< peer closed (or the line overflowed kMaxFrameBytes)
  };

  /// Sends `line` plus a newline, whole; false on any send error (the peer
  /// vanished). Never raises SIGPIPE.
  bool send_line(std::string_view line);

  /// Sends raw bytes with no newline — only the fault injector uses this,
  /// to emit the front half of a torn frame before "crashing".
  bool send_bytes(std::string_view bytes);

  /// Returns the next complete line (newline stripped). `timeout_ms` 0
  /// polls: it drains only what is already buffered or readable right now.
  Recv recv_line(std::string& out, int timeout_ms);

  /// True when a full line is already buffered; recv_line(out, 0) will
  /// return it without touching the socket.
  bool has_buffered_line() const;

  int fd() const { return fd_; }

  /// Closes the socket early (idempotent; the destructor also closes).
  void close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Listening socket for the controller.
class Listener {
 public:
  /// Binds and listens. A stale unix socket file at the path is unlinked
  /// first. Throws PreconditionError when binding fails.
  explicit Listener(const Endpoint& endpoint);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Accepts one pending connection; nullptr when none is ready within
  /// `timeout_ms`.
  std::unique_ptr<Stream> accept(int timeout_ms);

  int fd() const { return fd_; }

  /// The bound endpoint, with any ephemeral TCP port resolved.
  const Endpoint& local() const { return local_; }

 private:
  int fd_ = -1;
  Endpoint local_;
  bool unlink_on_close_ = false;
};

/// One connection attempt; nullptr on failure.
std::unique_ptr<Stream> connect_endpoint(const Endpoint& endpoint);

/// Bounded-retry connect with exponential backoff: up to `attempts` tries,
/// sleeping `backoff_ms` (doubling, capped at 2 s) between them. Checks
/// `cancel` (when non-null) before each attempt and while sleeping, so a
/// SIGINT interrupts the wait promptly. nullptr when every attempt failed
/// or the cancel flag was raised.
std::unique_ptr<Stream> connect_with_retry(const Endpoint& endpoint,
                                           int attempts, int backoff_ms,
                                           const std::atomic<bool>* cancel);

}  // namespace chronos::fabric
