#include "fabric/protocol.h"

#include <string_view>

#include "common/error.h"
#include "common/numeric.h"

namespace chronos::fabric {

namespace {

using numeric::fnv1a;
using numeric::hex64;
using numeric::parse_u64;

/// Tokens (fingerprints, names, reject reasons) must be printable and
/// space-free so they survive the space-delimited field syntax.
bool valid_token(std::string_view token) {
  if (token.empty()) {
    return false;
  }
  for (const char c : token) {
    if (c < '!' || c > '~') {
      return false;
    }
  }
  return true;
}

/// Result entries may contain spaces (journal lines do) but never a newline
/// or an empty body.
bool valid_entry(std::string_view entry) {
  if (entry.empty()) {
    return false;
  }
  for (const char c : entry) {
    if (c == '\n' || c == '\r') {
      return false;
    }
  }
  return true;
}

bool strictly_increasing(const std::vector<std::uint64_t>& cells) {
  for (std::size_t i = 1; i < cells.size(); ++i) {
    if (cells[i] <= cells[i - 1]) {
      return false;
    }
  }
  return true;
}

std::string encode_payload(const Frame& frame) {
  std::string out;
  switch (frame.type) {
    case FrameType::kHello:
      CHRONOS_EXPECTS(valid_token(frame.fingerprint),
                      "hello needs a printable, space-free fingerprint");
      CHRONOS_EXPECTS(valid_token(frame.name),
                      "hello needs a printable, space-free name");
      out = "hello v=" + std::to_string(frame.value) +
            " fp=" + frame.fingerprint + " name=" + frame.name;
      break;
    case FrameType::kWelcome:
      out = "welcome worker=" + std::to_string(frame.worker) +
            " hb_ms=" + std::to_string(frame.value);
      break;
    case FrameType::kReject:
      CHRONOS_EXPECTS(valid_token(frame.reason),
                      "reject needs a printable, space-free reason");
      out = "reject reason=" + frame.reason;
      break;
    case FrameType::kRequest:
      out = "request worker=" + std::to_string(frame.worker) +
            " want=" + std::to_string(frame.value);
      break;
    case FrameType::kLease: {
      CHRONOS_EXPECTS(!frame.cells.empty(), "a lease needs at least one cell");
      CHRONOS_EXPECTS(strictly_increasing(frame.cells),
                      "lease cells must be strictly increasing");
      out = "lease id=" + std::to_string(frame.lease) + " cells=";
      for (std::size_t i = 0; i < frame.cells.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        out += std::to_string(frame.cells[i]);
      }
      break;
    }
    case FrameType::kWait:
      out = "wait ms=" + std::to_string(frame.value);
      break;
    case FrameType::kDone:
      out = "done";
      break;
    case FrameType::kResult:
      CHRONOS_EXPECTS(valid_entry(frame.entry),
                      "a result needs a non-empty, newline-free entry");
      out = "result worker=" + std::to_string(frame.worker) +
            " lease=" + std::to_string(frame.lease) + " entry=" + frame.entry;
      break;
    case FrameType::kHeartbeat:
      out = "heartbeat worker=" + std::to_string(frame.worker) +
            " done=" + std::to_string(frame.value);
      break;
    case FrameType::kBye:
      out = "bye worker=" + std::to_string(frame.worker);
      break;
  }
  return out;
}

/// Consumes `prefix` from the front of `text`; false when absent.
bool eat(std::string_view& text, std::string_view prefix) {
  if (text.substr(0, prefix.size()) != prefix) {
    return false;
  }
  text.remove_prefix(prefix.size());
  return true;
}

/// Consumes a decimal u64 field ending at the next space (or the end).
bool eat_u64(std::string_view& text, std::uint64_t& out) {
  const std::size_t space = text.find(' ');
  const std::string_view token =
      text.substr(0, space == std::string_view::npos ? text.size() : space);
  if (!parse_u64(token, out)) {
    return false;
  }
  text.remove_prefix(token.size());
  return true;
}

/// Consumes a token field ending at the next space (or the end).
bool eat_token(std::string_view& text, std::string& out) {
  const std::size_t space = text.find(' ');
  const std::string_view token =
      text.substr(0, space == std::string_view::npos ? text.size() : space);
  if (!valid_token(token)) {
    return false;
  }
  out.assign(token);
  text.remove_prefix(token.size());
  return true;
}

std::optional<Frame> parse_payload(std::string_view payload) {
  Frame frame;
  if (eat(payload, "hello v=")) {
    frame.type = FrameType::kHello;
    if (!eat_u64(payload, frame.value) || !eat(payload, " fp=") ||
        !eat_token(payload, frame.fingerprint) || !eat(payload, " name=") ||
        !eat_token(payload, frame.name) || !payload.empty()) {
      return std::nullopt;
    }
    return frame;
  }
  if (eat(payload, "welcome worker=")) {
    frame.type = FrameType::kWelcome;
    if (!eat_u64(payload, frame.worker) || !eat(payload, " hb_ms=") ||
        !eat_u64(payload, frame.value) || !payload.empty()) {
      return std::nullopt;
    }
    return frame;
  }
  if (eat(payload, "reject reason=")) {
    frame.type = FrameType::kReject;
    if (!eat_token(payload, frame.reason) || !payload.empty()) {
      return std::nullopt;
    }
    return frame;
  }
  if (eat(payload, "request worker=")) {
    frame.type = FrameType::kRequest;
    if (!eat_u64(payload, frame.worker) || !eat(payload, " want=") ||
        !eat_u64(payload, frame.value) || !payload.empty()) {
      return std::nullopt;
    }
    return frame;
  }
  if (eat(payload, "lease id=")) {
    frame.type = FrameType::kLease;
    if (!eat_u64(payload, frame.lease) || !eat(payload, " cells=")) {
      return std::nullopt;
    }
    while (true) {
      std::uint64_t cell = 0;
      const std::size_t stop = payload.find_first_of(", ");
      const std::string_view token = payload.substr(
          0, stop == std::string_view::npos ? payload.size() : stop);
      if (!parse_u64(token, cell)) {
        return std::nullopt;
      }
      frame.cells.push_back(cell);
      payload.remove_prefix(token.size());
      if (payload.empty()) {
        break;
      }
      if (!eat(payload, ",")) {
        return std::nullopt;
      }
    }
    if (!strictly_increasing(frame.cells)) {
      return std::nullopt;
    }
    return frame;
  }
  if (eat(payload, "wait ms=")) {
    frame.type = FrameType::kWait;
    if (!eat_u64(payload, frame.value) || !payload.empty()) {
      return std::nullopt;
    }
    return frame;
  }
  if (payload == "done") {
    frame.type = FrameType::kDone;
    return frame;
  }
  if (eat(payload, "result worker=")) {
    frame.type = FrameType::kResult;
    if (!eat_u64(payload, frame.worker) || !eat(payload, " lease=") ||
        !eat_u64(payload, frame.lease) || !eat(payload, " entry=")) {
      return std::nullopt;
    }
    if (!valid_entry(payload)) {
      return std::nullopt;
    }
    frame.entry.assign(payload);
    return frame;
  }
  if (eat(payload, "heartbeat worker=")) {
    frame.type = FrameType::kHeartbeat;
    if (!eat_u64(payload, frame.worker) || !eat(payload, " done=") ||
        !eat_u64(payload, frame.value) || !payload.empty()) {
      return std::nullopt;
    }
    return frame;
  }
  if (eat(payload, "bye worker=")) {
    frame.type = FrameType::kBye;
    if (!eat_u64(payload, frame.worker) || !payload.empty()) {
      return std::nullopt;
    }
    return frame;
  }
  return std::nullopt;
}

}  // namespace

std::string encode_frame(const Frame& frame) {
  std::string line = encode_payload(frame);
  const std::uint64_t crc = fnv1a(line);  // payload only, before the suffix
  line += " crc=";
  line += hex64(crc);
  CHRONOS_EXPECTS(line.size() <= kMaxFrameBytes,
                  "frame exceeds kMaxFrameBytes");
  return line;
}

std::optional<Frame> decode_frame(const std::string& line) {
  if (line.empty() || line.size() > kMaxFrameBytes) {
    return std::nullopt;
  }
  // The frame checksum is the LAST " crc=" field: a result frame's embedded
  // journal entry carries its own " crc=" inside the payload.
  const std::size_t crc = line.rfind(" crc=");
  if (crc == std::string::npos) {
    return std::nullopt;
  }
  std::optional<Frame> frame =
      parse_payload(std::string_view(line).substr(0, crc));
  if (!frame.has_value()) {
    return std::nullopt;
  }
  // Canonical-or-reject: re-encoding the parsed frame must reproduce the
  // input exactly. This folds checksum verification and every "leading
  // zero / odd spacing / wrong field order" case into one byte comparison.
  if (encode_frame(*frame) != line) {
    return std::nullopt;
  }
  return frame;
}

}  // namespace chronos::fabric
