// Wire protocol of the distributed sweep fabric.
//
// Controller and workers exchange line-delimited text frames over a byte
// stream (unix-domain or TCP socket, see fabric/transport.h). Every frame is
// one line: a type word, `key=value` fields in a fixed order, and a trailing
// ` crc=<hex>` carrying the FNV-1a checksum of everything before it — the
// same checksum the checkpoint journal uses, so a torn or corrupted frame is
// detected exactly like a torn journal line.
//
//   hello v=1 fp=<fingerprint> name=<worker-name>
//   welcome worker=<id> hb_ms=<interval>
//   reject reason=<token>
//   request worker=<id> want=<cells>
//   lease id=<id> cells=<c1>,<c2>,...          (strictly increasing)
//   wait ms=<hint>
//   done
//   result worker=<id> lease=<id> entry=<journal entry line>
//   heartbeat worker=<id> done=<cells-completed>
//   bye worker=<id>
//
// A result frame embeds the finished cell verbatim as a checkpoint journal
// entry (exp/checkpoint.h): the controller appends those bytes to its
// journal unchanged, so a cell computed remotely is byte-identical to one
// computed in-process — which is what makes duplicate delivery (a retry, a
// reassigned lease finishing twice) detectable by plain byte comparison.
//
// Decoding is strict: a line decodes only when re-encoding the parsed frame
// reproduces it byte for byte. Anything else — bad checksum, unknown type,
// non-canonical numbers, reordered fields — is rejected, never half-read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace chronos::fabric {

/// Protocol version spoken by this binary; hello frames carrying any other
/// version are rejected.
inline constexpr std::uint64_t kProtocolVersion = 1;

/// Upper bound on one encoded frame (and thus one received line). A peer
/// that streams more than this without a newline is treated as broken.
inline constexpr std::size_t kMaxFrameBytes = 1 << 16;

enum class FrameType {
  kHello,      ///< worker -> controller: join (version, fingerprint, name)
  kWelcome,    ///< controller -> worker: assigned id + heartbeat interval
  kReject,     ///< controller -> worker: join refused (then close)
  kRequest,    ///< worker -> controller: ask for up to `want` cells
  kLease,      ///< controller -> worker: cells to compute under a lease id
  kWait,       ///< controller -> worker: nothing free; retry in ~ms
  kDone,       ///< controller -> worker: sweep complete, disconnect
  kResult,     ///< worker -> controller: one finished cell (journal entry)
  kHeartbeat,  ///< worker -> controller: liveness + progress count
  kBye,        ///< worker -> controller: graceful disconnect
};

/// One decoded frame. Fields outside the frame's type are left defaulted.
struct Frame {
  FrameType type = FrameType::kHello;
  std::uint64_t worker = 0;  ///< welcome/request/result/heartbeat/bye
  std::uint64_t lease = 0;   ///< lease/result: lease id
  /// hello: protocol version; welcome: heartbeat interval ms; request:
  /// cells wanted; wait: retry hint ms; heartbeat: cells completed so far.
  std::uint64_t value = 0;
  std::string fingerprint;          ///< hello: spec fingerprint
  std::string name;                 ///< hello: worker display name
  std::string reason;               ///< reject
  std::vector<std::uint64_t> cells; ///< lease: strictly increasing indices
  std::string entry;                ///< result: encoded journal entry line
};

/// Encodes a frame as its canonical line (no trailing newline), checksum
/// included. Throws PreconditionError on unencodable contents (an empty or
/// space-containing token, an empty or non-increasing lease cell list, an
/// entry with an embedded newline, a frame beyond kMaxFrameBytes).
std::string encode_frame(const Frame& frame);

/// Strict decode: returns the frame only when `line` is the exact canonical
/// encoding of it (valid checksum included); nullopt otherwise. Never
/// throws on wire input.
std::optional<Frame> decode_frame(const std::string& line);

}  // namespace chronos::fabric
