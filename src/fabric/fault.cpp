#include "fabric/fault.h"

#include <algorithm>

#include "common/error.h"
#include "common/numeric.h"

namespace chronos::fabric {

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string item = spec.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) {
      continue;
    }
    const std::size_t equals = item.find('=');
    CHRONOS_EXPECTS(equals != std::string::npos,
                    "fault item needs key=value, got '" + item + "'");
    const std::string key = item.substr(0, equals);
    std::uint64_t value = 0;
    CHRONOS_EXPECTS(numeric::parse_u64(item.substr(equals + 1), value),
                    "bad fault count in '" + item + "'");
    if (key == "kill-after") {
      plan.kill_after_cells = value;
    } else if (key == "hang-after") {
      plan.hang_after_cells = value;
    } else if (key == "delay-ms") {
      plan.delay_cell_ms = value;
    } else if (key == "drop") {
      CHRONOS_EXPECTS(value >= 1, "drop wants a 1-based frame index");
      plan.drop_frames.push_back(value);
    } else if (key == "dup") {
      CHRONOS_EXPECTS(value >= 1, "dup wants a 1-based frame index");
      plan.dup_frames.push_back(value);
    } else if (key == "torn") {
      CHRONOS_EXPECTS(value >= 1, "torn wants a 1-based frame index");
      plan.torn_frames.push_back(value);
    } else {
      CHRONOS_EXPECTS(false, "unknown fault key '" + key + "'");
    }
  }
  return plan;
}

FaultStream::Send FaultStream::send_frame(const std::string& line) {
  const std::uint64_t index = next_index_++;
  const auto scheduled = [index](const std::vector<std::uint64_t>& frames) {
    return std::find(frames.begin(), frames.end(), index) != frames.end();
  };
  if (scheduled(plan_.torn_frames)) {
    // Half a line, no newline: exactly what a crash mid-write leaves on the
    // wire. The caller closes the stream right after.
    inner_.send_bytes(std::string_view(line).substr(0, line.size() / 2));
    return Send::kTorn;
  }
  if (scheduled(plan_.drop_frames)) {
    return Send::kDropped;
  }
  if (!inner_.send_line(line)) {
    return Send::kError;
  }
  if (scheduled(plan_.dup_frames) && !inner_.send_line(line)) {
    return Send::kError;
  }
  return Send::kSent;
}

}  // namespace chronos::fabric
