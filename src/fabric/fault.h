// Deterministic fault injection for the sweep fabric.
//
// Every failure mode the fabric claims to survive is reproducible as a
// plain test: a FaultPlan tells one worker exactly when to crash, wedge,
// slow down, or corrupt its outbound stream — keyed to deterministic
// counters (cells completed, outbound frame index), never to wall-clock
// races. `sweeprun --worker --fault SPEC` parses the same plans, so ctest
// and CI drive identical scenarios.
//
//   kill-after=N    crash (abrupt close, no bye) after sending N results
//   hang-after=N    after N results: stop sending everything, heartbeats
//                   included, until the controller expires the lease
//   delay-ms=M      sleep M ms before sending each result
//   drop=K          swallow the K-th countable outbound frame (1-based)
//   dup=K           send the K-th countable outbound frame twice
//   torn=K          send only the front half of the K-th countable frame,
//                   then crash mid-line (a torn final line)
//
// Countable frames are the worker's hello/request/result/bye in send
// order. Heartbeats are sent from a timer thread, so counting them would
// make indices racy — they bypass the counter (send_heartbeat).
// drop/dup/torn repeat: "drop=2,drop=5" affects frames 2 and 5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/transport.h"

namespace chronos::fabric {

struct FaultPlan {
  std::uint64_t kill_after_cells = 0;  ///< 0 = never
  std::uint64_t hang_after_cells = 0;  ///< 0 = never
  std::uint64_t delay_cell_ms = 0;
  std::vector<std::uint64_t> drop_frames;  ///< 1-based countable indices
  std::vector<std::uint64_t> dup_frames;
  std::vector<std::uint64_t> torn_frames;

  bool any() const {
    return kill_after_cells > 0 || hang_after_cells > 0 ||
           delay_cell_ms > 0 || !drop_frames.empty() ||
           !dup_frames.empty() || !torn_frames.empty();
  }
};

/// Parses a comma-separated fault spec ("kill-after=1,drop=3"). Throws
/// PreconditionError on an unknown key or a bad count.
FaultPlan parse_fault_plan(const std::string& spec);

/// Stream decorator that applies a plan's frame-level faults on the send
/// path. Not thread-safe by itself; the worker serializes sends.
class FaultStream {
 public:
  FaultStream(Stream& inner, const FaultPlan& plan)
      : inner_(inner), plan_(plan) {}

  enum class Send {
    kSent,     ///< delivered (dup counts as delivered)
    kDropped,  ///< swallowed by a drop fault; the peer never sees it
    kTorn,     ///< half the bytes went out; the caller must now "crash"
    kError,    ///< the underlying stream failed (peer vanished)
  };

  /// Sends one countable frame, applying any drop/dup/torn fault scheduled
  /// for its index.
  Send send_frame(const std::string& line);

  /// Sends a heartbeat outside the countable sequence, fault-free.
  bool send_heartbeat(const std::string& line) {
    return inner_.send_line(line);
  }

  std::uint64_t frames_sent() const { return next_index_ - 1; }

 private:
  Stream& inner_;
  const FaultPlan& plan_;
  std::uint64_t next_index_ = 1;
};

}  // namespace chronos::fabric
