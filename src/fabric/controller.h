// Sweep-fabric controller: leases cells to workers, collects results, and
// reassigns the work of workers that die, wedge, or lose frames.
//
// The protocol-level logic lives in ControllerCore, a pure state machine:
// events go in (connect, line, disconnect, tick — each stamped with a
// caller-supplied clock), frame sends and closes come out. Nothing inside
// touches sockets or real time, so every failure scenario is unit-testable
// with a fake clock. run_controller wraps the core in a poll()-driven
// socket loop.
//
// Fault-tolerance invariants:
//  - A lease is a loan, not a transfer: cells stay owned by the controller
//    until a result for them arrives, from anyone.
//  - Liveness is heartbeat-based. A worker silent past the lease timeout is
//    expired; its unfinished cells return to the pending queue.
//  - A worker that requests work while its own lease still has unfinished
//    cells has provably lost those results (it would not ask otherwise —
//    e.g. a dropped result frame); they return to pending immediately, no
//    timeout needed.
//  - Results are idempotent: per-cell seed streams make re-execution
//    bit-identical, so a duplicate delivery must match the stored entry
//    byte for byte (counted, dropped). A byte-different duplicate can only
//    mean corruption or a foreign workload and fails the sweep loudly.
//  - Conservation: when the run completes, every cell in `todo` was
//    recorded exactly once (stats().results == todo.size()); duplicates are
//    tallied separately and never double-count.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "exp/checkpoint.h"
#include "fabric/protocol.h"

namespace chronos::fabric {

struct ControllerConfig {
  std::string fingerprint;    ///< spec fingerprint workers must present
  std::size_t num_cells = 0;  ///< grid size (for validating result indices)
  std::vector<std::size_t> todo;  ///< cells to compute, ascending
  std::uint64_t max_lease_cells = 4;   ///< cap per lease grant
  std::uint64_t heartbeat_ms = 500;    ///< interval advertised in welcome
  std::uint64_t lease_timeout_ms = 5000;  ///< silence => worker expired
  /// When > 0: a worker that heartbeats but delivers no result for this
  /// long has its lease revoked (it is wedged, not dead). 0 disables.
  std::uint64_t progress_timeout_ms = 0;
  /// Fail the sweep when no live worker has been around for this long.
  std::uint64_t worker_timeout_ms = 30000;
  std::uint64_t wait_hint_ms = 200;  ///< retry hint when nothing is free
};

/// Connection handle as seen by the core; the driver picks the values.
using ConnId = std::uint64_t;

/// What the core wants done after an event: frames to send, connections to
/// close. A closed connection is finished — the driver must drop it without
/// reporting a disconnect back (the core already cleaned up its state).
struct Actions {
  std::vector<std::pair<ConnId, std::string>> send;
  std::vector<ConnId> close;
};

struct ControllerStats {
  std::uint64_t leases_granted = 0;
  std::uint64_t leases_expired = 0;   ///< heartbeat/progress deadline hits
  std::uint64_t cells_reassigned = 0; ///< cells returned to pending
  std::uint64_t results = 0;          ///< first-time cell completions
  std::uint64_t duplicates = 0;       ///< identical re-deliveries dropped
  std::uint64_t heartbeats = 0;
  std::uint64_t workers_joined = 0;
  std::uint64_t workers_lost = 0;     ///< disconnects/expiries before done
  std::uint64_t protocol_errors = 0;
};

class ControllerCore {
 public:
  explicit ControllerCore(ControllerConfig config);

  /// Starts the clock (worker-timeout accounting).
  void start(std::uint64_t now_ms);

  Actions on_connect(ConnId conn, std::uint64_t now_ms);
  Actions on_line(ConnId conn, const std::string& line,
                  std::uint64_t now_ms);
  Actions on_disconnect(ConnId conn, std::uint64_t now_ms);

  /// Periodic maintenance: expires silent workers, revokes stalled leases,
  /// trips the no-worker timeout. Call every few tens of ms.
  Actions on_tick(std::uint64_t now_ms);

  /// Every todo cell has a recorded result.
  bool done() const { return finished_.size() == config_.todo.size(); }

  /// The sweep cannot succeed (conflicting results, worker drought).
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  /// Live (welcomed) workers.
  std::size_t live_workers() const { return workers_.size(); }

  const std::map<std::size_t, exp::CellAggregate>& finished() const {
    return finished_;
  }
  const ControllerStats& stats() const { return stats_; }

  /// Invoked exactly once per todo cell, on its first accepted result —
  /// the journal hookup. The entry's bytes equal the worker's wire entry.
  std::function<void(const exp::JournalEntry&)> on_cell_finished;

 private:
  struct WorkerState {
    ConnId conn = 0;
    std::string name;
    std::uint64_t last_seen_ms = 0;
    std::uint64_t last_progress_ms = 0;
    std::uint64_t lease_id = 0;               ///< 0 = no outstanding lease
    std::vector<std::size_t> outstanding;     ///< leased, not yet finished
  };

  Actions fail(const std::string& message);
  void reassign(WorkerState& worker, const char* why);
  void drop_worker(std::uint64_t worker_id, const char* why);
  Actions handle_hello(ConnId conn, const Frame& frame, std::uint64_t now);
  Actions handle_request(WorkerState& worker, const Frame& frame);
  Actions handle_result(WorkerState& worker, const Frame& frame,
                        std::uint64_t now);
  Actions protocol_error(ConnId conn, std::uint64_t now);

  ControllerConfig config_;
  std::uint64_t started_ms_ = 0;
  std::uint64_t last_alive_ms_ = 0;  ///< last instant with >= 1 live worker
  std::vector<std::size_t> pending_;  ///< unleased todo cells, FIFO
  std::map<std::size_t, std::string> finished_lines_;  ///< entry bytes
  std::map<std::size_t, exp::CellAggregate> finished_;
  std::map<ConnId, std::uint64_t> conns_;     ///< conn -> worker id (0 = new)
  std::map<std::uint64_t, WorkerState> workers_;
  std::uint64_t next_worker_ = 1;
  std::uint64_t next_lease_ = 1;
  bool failed_ = false;
  std::string error_;
  ControllerStats stats_;
};

/// Result of a completed controller run.
struct ControllerRunResult {
  std::map<std::size_t, exp::CellAggregate> cells;  ///< the todo cells
  ControllerStats stats;
};

/// Runs a controller to completion on `address` (fabric/transport.h endpoint
/// syntax). `on_cell` (optional) receives each first-time result — wire it
/// to a JournalWriter for crash-proof restarts. `cancel` (optional) drains
/// the run: connections close and exp::SweepCancelled is thrown, with every
/// journaled cell intact. Throws on controller failure (conflicting
/// results, no workers within the timeout).
ControllerRunResult run_controller(
    const std::string& address, const ControllerConfig& config,
    const std::function<void(const exp::JournalEntry&)>& on_cell,
    const std::atomic<bool>* cancel);

}  // namespace chronos::fabric
