#include "fabric/worker.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>

#include "common/error.h"
#include "exp/checkpoint.h"
#include "fabric/protocol.h"
#include "fabric/transport.h"
#include "obs/metrics.h"

namespace chronos::fabric {

namespace {

const obs::Counter c_worker_cells = obs::counter("fabric.worker.cells");
const obs::Counter c_worker_leases = obs::counter("fabric.worker.leases");

/// Sleeps `ms` in small slices, returning early (false) when `cancel` or
/// `stop` is raised.
bool interruptible_sleep(std::uint64_t ms, const std::atomic<bool>* cancel,
                         const std::atomic<bool>* stop) {
  for (std::uint64_t slept = 0; slept < ms; slept += 10) {
    if ((cancel != nullptr && cancel->load(std::memory_order_relaxed)) ||
        (stop != nullptr && stop->load(std::memory_order_relaxed))) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min<std::uint64_t>(10, ms - slept)));
  }
  return true;
}

}  // namespace

int worker_exit_code(WorkerOutcome outcome) {
  switch (outcome) {
    case WorkerOutcome::kDone:
      return 0;
    case WorkerOutcome::kLost:
      return 1;
    case WorkerOutcome::kRejected:
      return 2;
    case WorkerOutcome::kFaultStop:
      return 3;
    case WorkerOutcome::kCancelled:
      return 130;
  }
  return 1;
}

WorkerOutcome run_worker(const exp::SweepSpec& spec,
                         const exp::SweepHooks& hooks,
                         const WorkerOptions& options) {
  spec.validate();
  CHRONOS_EXPECTS(!options.fingerprint.empty(),
                  "worker needs a spec fingerprint");
  CHRONOS_EXPECTS(options.want >= 1, "worker must want at least one cell");
  const Endpoint endpoint = parse_endpoint(options.address);
  const std::unique_ptr<Stream> stream =
      connect_with_retry(endpoint, options.connect_attempts,
                         options.connect_backoff_ms, options.cancel);
  if (stream == nullptr) {
    return options.cancel != nullptr &&
                   options.cancel->load(std::memory_order_relaxed)
               ? WorkerOutcome::kCancelled
               : WorkerOutcome::kLost;
  }
  FaultStream out(*stream, options.fault);
  std::mutex send_mu;

  // --- handshake: hello -> welcome (resent on a lost reply) ---------------
  std::uint64_t worker_id = 0;
  std::uint64_t heartbeat_ms = 0;
  {
    Frame hello;
    hello.type = FrameType::kHello;
    hello.value = kProtocolVersion;
    hello.fingerprint = options.fingerprint;
    hello.name = options.name;
    const std::string hello_line = encode_frame(hello);
    bool welcomed = false;
    for (int attempt = 0; attempt < 5 && !welcomed; ++attempt) {
      switch (out.send_frame(hello_line)) {
        case FaultStream::Send::kTorn:
          stream->close();
          return WorkerOutcome::kFaultStop;
        case FaultStream::Send::kError:
          return WorkerOutcome::kLost;
        case FaultStream::Send::kDropped:
        case FaultStream::Send::kSent:
          break;
      }
      std::string line;
      const Stream::Recv status = stream->recv_line(line, 2000);
      if (status == Stream::Recv::kTimeout) {
        continue;  // reply (or our hello) went missing; try again
      }
      if (status == Stream::Recv::kClosed) {
        return WorkerOutcome::kLost;
      }
      const std::optional<Frame> reply = decode_frame(line);
      if (!reply.has_value()) {
        return WorkerOutcome::kLost;
      }
      if (reply->type == FrameType::kReject) {
        return WorkerOutcome::kRejected;
      }
      if (reply->type != FrameType::kWelcome) {
        return WorkerOutcome::kLost;
      }
      worker_id = reply->worker;
      heartbeat_ms = std::max<std::uint64_t>(reply->value, 1);
      welcomed = true;
    }
    if (!welcomed) {
      return WorkerOutcome::kLost;
    }
  }

  // --- heartbeat thread ---------------------------------------------------
  // Sends at half the controller's advertised interval so one lost or
  // delayed beat never trips the deadline. The hang fault silences it too:
  // a wedged process stops doing everything.
  std::atomic<bool> stop_heartbeats{false};
  std::atomic<bool> hang{false};
  std::atomic<std::uint64_t> cells_completed{0};
  std::thread heartbeat_thread([&] {
    while (!stop_heartbeats.load(std::memory_order_relaxed)) {
      if (!interruptible_sleep(std::max<std::uint64_t>(heartbeat_ms / 2, 5),
                               nullptr, &stop_heartbeats)) {
        return;
      }
      if (hang.load(std::memory_order_relaxed)) {
        continue;
      }
      Frame beat;
      beat.type = FrameType::kHeartbeat;
      beat.worker = worker_id;
      beat.value = cells_completed.load(std::memory_order_relaxed);
      const std::string line = encode_frame(beat);
      std::lock_guard<std::mutex> lock(send_mu);
      out.send_heartbeat(line);
    }
  });
  // finish() joins the heartbeat thread, which blocks on send_mu to emit a
  // beat — so it must NEVER run with send_mu held, or a beat fired at just
  // the wrong instant deadlocks the join. Every send below scopes its
  // lock_guard tightly and calls finish() only after releasing it.
  const auto finish = [&](WorkerOutcome outcome) {
    stop_heartbeats.store(true, std::memory_order_relaxed);
    heartbeat_thread.join();
    return outcome;
  };

  // --- lease loop ---------------------------------------------------------
  std::uint64_t results_sent = 0;
  int consecutive_timeouts = 0;
  while (true) {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      Frame bye;
      bye.type = FrameType::kBye;
      bye.worker = worker_id;
      {
        std::lock_guard<std::mutex> lock(send_mu);
        out.send_frame(encode_frame(bye));
      }
      return finish(WorkerOutcome::kCancelled);
    }
    {
      Frame request;
      request.type = FrameType::kRequest;
      request.worker = worker_id;
      request.value = options.want;
      const std::string line = encode_frame(request);
      FaultStream::Send sent;
      {
        std::lock_guard<std::mutex> lock(send_mu);
        sent = out.send_frame(line);
      }
      switch (sent) {
        case FaultStream::Send::kTorn:
          stream->close();
          return finish(WorkerOutcome::kFaultStop);
        case FaultStream::Send::kError:
          return finish(WorkerOutcome::kLost);
        case FaultStream::Send::kDropped:
        case FaultStream::Send::kSent:
          break;  // a dropped request surfaces as a recv timeout below
      }
    }
    std::string line;
    const Stream::Recv status = stream->recv_line(
        line, static_cast<int>(std::max<std::uint64_t>(heartbeat_ms * 4,
                                                       500)));
    if (status == Stream::Recv::kTimeout) {
      // Lost request or lost reply; ask again. The controller's
      // revoke-on-request makes the retry idempotent.
      if (++consecutive_timeouts > 20) {
        return finish(WorkerOutcome::kLost);
      }
      continue;
    }
    if (status == Stream::Recv::kClosed) {
      return finish(WorkerOutcome::kLost);
    }
    consecutive_timeouts = 0;
    const std::optional<Frame> reply = decode_frame(line);
    if (!reply.has_value()) {
      return finish(WorkerOutcome::kLost);
    }
    if (reply->type == FrameType::kWait) {
      interruptible_sleep(std::min<std::uint64_t>(reply->value, 1000),
                          options.cancel, nullptr);
      continue;
    }
    if (reply->type == FrameType::kDone) {
      Frame bye;
      bye.type = FrameType::kBye;
      bye.worker = worker_id;
      {
        std::lock_guard<std::mutex> lock(send_mu);
        out.send_frame(encode_frame(bye));
      }
      return finish(WorkerOutcome::kDone);
    }
    if (reply->type != FrameType::kLease) {
      return finish(WorkerOutcome::kLost);
    }

    c_worker_leases.add();
    for (const std::uint64_t cell : reply->cells) {
      const exp::CellAggregate aggregate =
          exp::run_single_cell(spec, hooks, static_cast<std::size_t>(cell));
      c_worker_cells.add();
      exp::JournalEntry entry;
      entry.cell = static_cast<std::size_t>(cell);
      entry.aggregate = aggregate;
      Frame result;
      result.type = FrameType::kResult;
      result.worker = worker_id;
      result.lease = reply->lease;
      result.entry = exp::encode_journal_entry(entry);
      if (options.fault.delay_cell_ms > 0) {
        interruptible_sleep(options.fault.delay_cell_ms, options.cancel,
                            nullptr);
      }
      if (options.fault.hang_after_cells > 0 &&
          results_sent >= options.fault.hang_after_cells) {
        // Wedge: no result, no heartbeat, no disconnect. The controller's
        // heartbeat deadline must dig the cells out.
        hang.store(true, std::memory_order_relaxed);
        std::string ignored;
        while (stream->recv_line(ignored, 60000) == Stream::Recv::kLine) {
        }
        return finish(WorkerOutcome::kFaultStop);
      }
      {
        const std::string result_line = encode_frame(result);
        FaultStream::Send sent;
        {
          std::lock_guard<std::mutex> lock(send_mu);
          sent = out.send_frame(result_line);
        }
        switch (sent) {
          case FaultStream::Send::kTorn:
            stream->close();
            return finish(WorkerOutcome::kFaultStop);
          case FaultStream::Send::kError:
            return finish(WorkerOutcome::kLost);
          case FaultStream::Send::kDropped:
          case FaultStream::Send::kSent:
            break;
        }
      }
      results_sent += 1;
      cells_completed.fetch_add(1, std::memory_order_relaxed);
      if (options.fault.kill_after_cells > 0 &&
          results_sent >= options.fault.kill_after_cells) {
        // Crash: abrupt close, no bye — exactly what kill -9 looks like
        // from the controller's side.
        stream->close();
        return finish(WorkerOutcome::kFaultStop);
      }
    }
  }
}

}  // namespace chronos::fabric
