// Sweep-fabric worker: connects to a controller, leases cells, computes
// them with exp::run_single_cell, and streams the results back as journal
// entries.
//
// Because run_single_cell re-derives each cell's seed stream from the
// master seed, a worker needs nothing but the manifest the controller also
// loaded: any worker can compute any cell, any number of times, with
// bit-identical bytes. The worker keeps a heartbeat thread so the
// controller can tell a slow worker from a dead one, retries its initial
// connect with exponential backoff, and re-requests work when a reply goes
// missing — the controller's revoke-on-request logic makes that safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "exp/sweep.h"
#include "fabric/fault.h"

namespace chronos::fabric {

struct WorkerOptions {
  std::string address;      ///< controller endpoint (transport.h syntax)
  std::string fingerprint;  ///< must match the controller's
  std::string name = "worker";
  std::uint64_t want = 2;   ///< cells to request per lease
  int connect_attempts = 10;
  int connect_backoff_ms = 50;
  FaultPlan fault;          ///< deterministic fault injection (tests/CI)
  const std::atomic<bool>* cancel = nullptr;
};

enum class WorkerOutcome {
  kDone,       ///< controller reported the sweep complete
  kLost,       ///< connection lost / controller gone / protocol breakdown
  kRejected,   ///< controller refused the handshake (wrong fingerprint)
  kFaultStop,  ///< a planned fault (kill/hang/torn) ended this worker
  kCancelled,  ///< the cancel flag was raised (SIGINT/SIGTERM)
};

/// Process exit code for an outcome (done=0, lost=1, rejected=2, fault=3,
/// cancelled=130).
int worker_exit_code(WorkerOutcome outcome);

/// Runs one worker to completion against `spec`/`hooks` (which must be
/// built from the same manifest as the controller's — the fingerprint
/// handshake enforces it).
WorkerOutcome run_worker(const exp::SweepSpec& spec,
                         const exp::SweepHooks& hooks,
                         const WorkerOptions& options);

}  // namespace chronos::fabric
