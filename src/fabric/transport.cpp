#include "fabric/transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/error.h"
#include "fabric/protocol.h"
#include "obs/metrics.h"

namespace chronos::fabric {

namespace {

const obs::Counter c_bytes_sent = obs::counter("fabric.bytes_sent");
const obs::Counter c_bytes_received = obs::counter("fabric.bytes_received");
const obs::Counter c_connect_retries = obs::counter("fabric.connect_retries");

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  CHRONOS_EXPECTS(path.size() < sizeof(address.sun_path),
                  "unix socket path too long: '" + path + "'");
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

/// getaddrinfo wrapper; returns -1 instead of throwing so connect attempts
/// can be retried.
int open_tcp(const Endpoint& endpoint, bool listen_mode) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (listen_mode) {
    hints.ai_flags = AI_PASSIVE;
  }
  addrinfo* found = nullptr;
  const std::string port = std::to_string(endpoint.port);
  if (::getaddrinfo(endpoint.path_or_host.c_str(), port.c_str(), &hints,
                    &found) != 0) {
    return -1;
  }
  int fd = -1;
  for (addrinfo* info = found; info != nullptr; info = info->ai_next) {
    fd = ::socket(info->ai_family, info->ai_socktype, info->ai_protocol);
    if (fd < 0) {
      continue;
    }
    if (listen_mode) {
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, info->ai_addr, info->ai_addrlen) == 0) {
        break;
      }
    } else if (::connect(fd, info->ai_addr, info->ai_addrlen) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  return fd;
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  CHRONOS_EXPECTS(!spec.empty(), "empty fabric endpoint");
  Endpoint endpoint;
  if (spec.rfind("tcp:", 0) == 0) {
    endpoint.tcp = true;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    CHRONOS_EXPECTS(colon != std::string::npos && colon > 0,
                    "tcp endpoint wants tcp:HOST:PORT, got '" + spec + "'");
    endpoint.path_or_host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    char* end = nullptr;
    const long parsed = std::strtol(port.c_str(), &end, 10);
    CHRONOS_EXPECTS(end != nullptr && *end == '\0' && !port.empty() &&
                        parsed >= 0 && parsed <= 65535,
                    "bad tcp port in '" + spec + "'");
    endpoint.port = static_cast<int>(parsed);
    return endpoint;
  }
  endpoint.path_or_host =
      spec.rfind("unix:", 0) == 0 ? spec.substr(5) : spec;
  CHRONOS_EXPECTS(!endpoint.path_or_host.empty(),
                  "empty unix socket path in '" + spec + "'");
  unix_address(endpoint.path_or_host);  // validates the length
  return endpoint;
}

std::string endpoint_to_string(const Endpoint& endpoint) {
  if (endpoint.tcp) {
    return "tcp:" + endpoint.path_or_host + ":" +
           std::to_string(endpoint.port);
  }
  return "unix:" + endpoint.path_or_host;
}

Stream::Stream(int fd) : fd_(fd) {}

Stream::~Stream() { close(); }

void Stream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Stream::send_bytes(std::string_view bytes) {
  if (fd_ < 0) {
    return false;
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a vanished peer yields EPIPE instead of killing the
    // process — the fabric treats it like any other disconnect.
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  c_bytes_sent.add(bytes.size());
  return true;
}

bool Stream::send_line(std::string_view line) {
  std::string framed(line);
  framed += '\n';
  return send_bytes(framed);
}

bool Stream::has_buffered_line() const {
  return buffer_.find('\n') != std::string::npos;
}

Stream::Recv Stream::recv_line(std::string& out, int timeout_ms) {
  const std::uint64_t deadline = now_ms() + static_cast<std::uint64_t>(
                                                timeout_ms < 0 ? 0
                                                               : timeout_ms);
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      out.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return Recv::kLine;
    }
    if (buffer_.size() > kMaxFrameBytes) {
      // A peer streaming an unbounded "line" is broken; cut it off.
      return Recv::kClosed;
    }
    if (fd_ < 0) {
      return Recv::kClosed;
    }
    const std::uint64_t now = now_ms();
    const int remaining =
        now >= deadline ? 0 : static_cast<int>(deadline - now);
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, remaining);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Recv::kClosed;
    }
    if (ready == 0) {
      return Recv::kTimeout;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Recv::kClosed;
    }
    if (n == 0) {
      // Peer closed; whatever partial line remains buffered is a torn tail
      // and is dropped, like a torn journal line.
      return Recv::kClosed;
    }
    c_bytes_received.add(static_cast<std::uint64_t>(n));
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Listener::Listener(const Endpoint& endpoint) : local_(endpoint) {
  if (endpoint.tcp) {
    fd_ = open_tcp(endpoint, /*listen_mode=*/true);
    CHRONOS_EXPECTS(fd_ >= 0, "cannot bind " + endpoint_to_string(endpoint));
    sockaddr_storage bound{};
    socklen_t length = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &length) ==
        0) {
      if (bound.ss_family == AF_INET) {
        local_.port = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        local_.port =
            ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
      }
    }
  } else {
    ::unlink(endpoint.path_or_host.c_str());  // stale socket from a crash
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    CHRONOS_EXPECTS(fd_ >= 0, "cannot create unix socket");
    const sockaddr_un address = unix_address(endpoint.path_or_host);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address),
               sizeof(address)) != 0) {
      ::close(fd_);
      fd_ = -1;
      CHRONOS_EXPECTS(false,
                      "cannot bind " + endpoint_to_string(endpoint) + ": " +
                          std::strerror(errno));
    }
    unlink_on_close_ = true;
  }
  if (::listen(fd_, 16) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    CHRONOS_EXPECTS(false, "cannot listen on " +
                               endpoint_to_string(endpoint) + ": " + detail);
  }
}

Listener::~Listener() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  if (unlink_on_close_) {
    ::unlink(local_.path_or_host.c_str());
  }
}

std::unique_ptr<Stream> Listener::accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) {
    return nullptr;
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    return nullptr;
  }
  return std::make_unique<Stream>(fd);
}

std::unique_ptr<Stream> connect_endpoint(const Endpoint& endpoint) {
  int fd = -1;
  if (endpoint.tcp) {
    fd = open_tcp(endpoint, /*listen_mode=*/false);
  } else {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd >= 0) {
      const sockaddr_un address = unix_address(endpoint.path_or_host);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                    sizeof(address)) != 0) {
        ::close(fd);
        fd = -1;
      }
    }
  }
  if (fd < 0) {
    return nullptr;
  }
  return std::make_unique<Stream>(fd);
}

std::unique_ptr<Stream> connect_with_retry(const Endpoint& endpoint,
                                           int attempts, int backoff_ms,
                                           const std::atomic<bool>* cancel) {
  CHRONOS_EXPECTS(attempts >= 1, "connect_with_retry wants attempts >= 1");
  CHRONOS_EXPECTS(backoff_ms >= 1, "connect_with_retry wants backoff >= 1");
  int sleep_ms = backoff_ms;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return nullptr;
    }
    if (attempt > 0) {
      c_connect_retries.add();
      // Sleep in small slices so a cancel interrupts the backoff quickly.
      for (int slept = 0; slept < sleep_ms; slept += 10) {
        if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
          return nullptr;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::min(10, sleep_ms - slept)));
      }
      sleep_ms = std::min(sleep_ms * 2, 2000);
    }
    auto stream = connect_endpoint(endpoint);
    if (stream != nullptr) {
      return stream;
    }
  }
  return nullptr;
}

}  // namespace chronos::fabric
