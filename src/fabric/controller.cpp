#include "fabric/controller.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <set>

#include "common/error.h"
#include "exp/sweep.h"
#include "fabric/transport.h"
#include "obs/metrics.h"

namespace chronos::fabric {

namespace {

const obs::Counter c_leases_granted = obs::counter("fabric.leases_granted");
const obs::Counter c_leases_expired = obs::counter("fabric.leases_expired");
const obs::Counter c_cells_reassigned =
    obs::counter("fabric.cells_reassigned");
const obs::Counter c_results = obs::counter("fabric.results");
const obs::Counter c_duplicates = obs::counter("fabric.duplicates");
const obs::Counter c_heartbeats = obs::counter("fabric.heartbeats");
const obs::Counter c_workers_joined = obs::counter("fabric.workers_joined");
const obs::Counter c_workers_lost = obs::counter("fabric.workers_lost");
const obs::Counter c_protocol_errors =
    obs::counter("fabric.protocol_errors");
const obs::Gauge g_workers = obs::gauge("fabric.workers");

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ControllerCore::ControllerCore(ControllerConfig config)
    : config_(std::move(config)) {
  CHRONOS_EXPECTS(!config_.fingerprint.empty(),
                  "controller needs a spec fingerprint");
  CHRONOS_EXPECTS(config_.max_lease_cells >= 1,
                  "max_lease_cells must be >= 1");
  CHRONOS_EXPECTS(config_.heartbeat_ms >= 1, "heartbeat_ms must be >= 1");
  CHRONOS_EXPECTS(config_.lease_timeout_ms > config_.heartbeat_ms,
                  "lease_timeout_ms must exceed heartbeat_ms");
  std::size_t previous = 0;
  bool first = true;
  for (const std::size_t cell : config_.todo) {
    CHRONOS_EXPECTS(cell < config_.num_cells,
                    "todo cell " + std::to_string(cell) +
                        " out of range for a " +
                        std::to_string(config_.num_cells) + "-cell sweep");
    CHRONOS_EXPECTS(first || cell > previous,
                    "todo cells must be strictly ascending");
    first = false;
    previous = cell;
    pending_.push_back(cell);
  }
}

void ControllerCore::start(std::uint64_t now_ms) {
  started_ms_ = now_ms;
  last_alive_ms_ = now_ms;
}

Actions ControllerCore::on_connect(ConnId conn, std::uint64_t) {
  conns_[conn] = 0;  // unwelcomed until a valid hello arrives
  return {};
}

Actions ControllerCore::fail(const std::string& message) {
  failed_ = true;
  error_ = message;
  Actions actions;
  for (const auto& [conn, worker] : conns_) {
    actions.close.push_back(conn);
  }
  conns_.clear();
  workers_.clear();
  return actions;
}

void ControllerCore::reassign(WorkerState& worker, const char* why) {
  if (worker.outstanding.empty()) {
    worker.lease_id = 0;
    return;
  }
  // Returned cells go to the FRONT of the queue, in ascending order, so the
  // sweep finishes the oldest work first and the reassignment order is a
  // pure function of the event sequence.
  std::vector<std::size_t> cells = worker.outstanding;
  std::sort(cells.begin(), cells.end());
  pending_.insert(pending_.begin(), cells.begin(), cells.end());
  stats_.cells_reassigned += cells.size();
  c_cells_reassigned.add(cells.size());
  (void)why;
  worker.outstanding.clear();
  worker.lease_id = 0;
}

void ControllerCore::drop_worker(std::uint64_t worker_id, const char* why) {
  auto it = workers_.find(worker_id);
  if (it == workers_.end()) {
    return;
  }
  reassign(it->second, why);
  conns_.erase(it->second.conn);
  workers_.erase(it);
}

Actions ControllerCore::protocol_error(ConnId conn, std::uint64_t now) {
  stats_.protocol_errors += 1;
  c_protocol_errors.add();
  Actions actions = on_disconnect(conn, now);
  actions.close.push_back(conn);
  return actions;
}

Actions ControllerCore::handle_hello(ConnId conn, const Frame& frame,
                                     std::uint64_t now) {
  Actions actions;
  std::string reject_reason;
  if (frame.value != kProtocolVersion) {
    reject_reason = "version-mismatch";
  } else if (frame.fingerprint != config_.fingerprint) {
    reject_reason = "fingerprint-mismatch";
  }
  if (!reject_reason.empty()) {
    Frame reject;
    reject.type = FrameType::kReject;
    reject.reason = reject_reason;
    actions.send.emplace_back(conn, encode_frame(reject));
    conns_.erase(conn);
    actions.close.push_back(conn);
    return actions;
  }
  std::uint64_t worker_id = conns_[conn];
  if (worker_id == 0) {
    worker_id = next_worker_++;
    conns_[conn] = worker_id;
    WorkerState worker;
    worker.conn = conn;
    worker.name = frame.name;
    worker.last_seen_ms = now;
    worker.last_progress_ms = now;
    workers_.emplace(worker_id, std::move(worker));
    stats_.workers_joined += 1;
    c_workers_joined.add();
    g_workers.update(workers_.size());
  }
  // A duplicated hello (dup-frame fault, worker retry) re-sends the same
  // welcome: the handshake is idempotent.
  Frame welcome;
  welcome.type = FrameType::kWelcome;
  welcome.worker = worker_id;
  welcome.value = config_.heartbeat_ms;
  actions.send.emplace_back(conn, encode_frame(welcome));
  return actions;
}

Actions ControllerCore::handle_request(WorkerState& worker,
                                       const Frame& frame) {
  Actions actions;
  const ConnId conn = worker.conn;
  // Revoke-on-request: a worker asking for work while its own lease still
  // has unfinished cells has provably lost those results (a dropped frame,
  // a restart) — it would not ask otherwise. Return them to pending
  // deterministically instead of waiting for any timeout.
  if (!worker.outstanding.empty()) {
    reassign(worker, "request-with-outstanding-lease");
  }
  if (pending_.empty()) {
    Frame reply;
    if (done()) {
      reply.type = FrameType::kDone;
    } else {
      // Unfinished cells are leased to other workers; tell this one to
      // come back shortly (it may inherit them if an expiry returns them).
      reply.type = FrameType::kWait;
      reply.value = config_.wait_hint_ms;
    }
    actions.send.emplace_back(conn, encode_frame(reply));
    return actions;
  }
  const std::uint64_t want =
      std::clamp<std::uint64_t>(frame.value, 1, config_.max_lease_cells);
  const std::size_t count =
      std::min<std::size_t>(static_cast<std::size_t>(want), pending_.size());
  std::vector<std::size_t> cells(pending_.begin(),
                                 pending_.begin() + count);
  pending_.erase(pending_.begin(), pending_.begin() + count);
  std::sort(cells.begin(), cells.end());
  worker.lease_id = next_lease_++;
  worker.outstanding = cells;
  stats_.leases_granted += 1;
  c_leases_granted.add();
  Frame lease;
  lease.type = FrameType::kLease;
  lease.lease = worker.lease_id;
  lease.cells.assign(cells.begin(), cells.end());
  actions.send.emplace_back(conn, encode_frame(lease));
  return actions;
}

Actions ControllerCore::handle_result(WorkerState& worker,
                                      const Frame& frame,
                                      std::uint64_t now) {
  const std::optional<exp::JournalEntry> entry =
      exp::decode_journal_entry(frame.entry);
  if (!entry.has_value() || entry->cell >= config_.num_cells ||
      !std::binary_search(config_.todo.begin(), config_.todo.end(),
                          entry->cell)) {
    return protocol_error(worker.conn, now);
  }
  const std::size_t cell = entry->cell;
  worker.last_progress_ms = now;
  const auto seen = finished_lines_.find(cell);
  if (seen != finished_lines_.end()) {
    // Already finished: a late or duplicated delivery. Per-cell seed
    // streams make honest re-execution bit-identical, so the bytes must
    // match; anything else is corruption and poisons the whole sweep.
    if (seen->second == frame.entry) {
      stats_.duplicates += 1;
      c_duplicates.add();
      return {};
    }
    return fail("conflicting result for cell " + std::to_string(cell) +
                ": two workers produced different bytes");
  }
  finished_lines_.emplace(cell, frame.entry);
  finished_.emplace(cell, entry->aggregate);
  stats_.results += 1;
  c_results.add();
  if (on_cell_finished) {
    on_cell_finished(*entry);
  }
  // The cell may simultaneously sit in pending_ (revoked/expired lease) or
  // in another worker's outstanding set (reassigned, both still running);
  // a completed cell leaves every queue.
  pending_.erase(std::remove(pending_.begin(), pending_.end(), cell),
                 pending_.end());
  for (auto& [id, other] : workers_) {
    auto& cells = other.outstanding;
    cells.erase(std::remove(cells.begin(), cells.end(), cell), cells.end());
    if (cells.empty()) {
      other.lease_id = 0;
    }
  }
  return {};
}

Actions ControllerCore::on_line(ConnId conn, const std::string& line,
                                std::uint64_t now_ms) {
  const auto conn_it = conns_.find(conn);
  if (conn_it == conns_.end()) {
    return {};  // already closed by an earlier action
  }
  const std::optional<Frame> frame = decode_frame(line);
  if (!frame.has_value()) {
    return protocol_error(conn, now_ms);
  }
  if (frame->type == FrameType::kHello) {
    return handle_hello(conn, *frame, now_ms);
  }
  // Everything else requires a completed handshake, and the worker id in
  // the frame must be the one this connection was welcomed with.
  const std::uint64_t worker_id = conn_it->second;
  auto worker_it = workers_.find(worker_id);
  if (worker_id == 0 || worker_it == workers_.end() ||
      frame->worker != worker_id) {
    return protocol_error(conn, now_ms);
  }
  WorkerState& worker = worker_it->second;
  worker.last_seen_ms = now_ms;
  switch (frame->type) {
    case FrameType::kRequest:
      return handle_request(worker, *frame);
    case FrameType::kResult:
      return handle_result(worker, *frame, now_ms);
    case FrameType::kHeartbeat:
      stats_.heartbeats += 1;
      c_heartbeats.add();
      return {};
    case FrameType::kBye: {
      Actions actions;
      drop_worker(worker_id, "bye");
      actions.close.push_back(conn);
      return actions;
    }
    default:
      // welcome/lease/wait/done/reject are controller->worker only.
      return protocol_error(conn, now_ms);
  }
}

Actions ControllerCore::on_disconnect(ConnId conn, std::uint64_t) {
  const auto conn_it = conns_.find(conn);
  if (conn_it == conns_.end()) {
    return {};
  }
  const std::uint64_t worker_id = conn_it->second;
  if (worker_id != 0 && workers_.count(worker_id) > 0) {
    if (!done()) {
      stats_.workers_lost += 1;
      c_workers_lost.add();
    }
    drop_worker(worker_id, "disconnect");
  }
  conns_.erase(conn);
  return {};
}

Actions ControllerCore::on_tick(std::uint64_t now_ms) {
  if (failed_) {
    return {};
  }
  Actions actions;
  // Heartbeat deadline: a worker silent for the whole lease timeout is
  // dead or unreachable; cut it loose and put its cells back to work.
  std::vector<std::uint64_t> expired;
  for (auto& [id, worker] : workers_) {
    if (now_ms - worker.last_seen_ms > config_.lease_timeout_ms) {
      expired.push_back(id);
    }
  }
  for (const std::uint64_t id : expired) {
    WorkerState& worker = workers_.at(id);
    if (worker.lease_id != 0) {
      stats_.leases_expired += 1;
      c_leases_expired.add();
    }
    actions.close.push_back(worker.conn);
    if (!done()) {
      stats_.workers_lost += 1;
      c_workers_lost.add();
    }
    drop_worker(id, "heartbeat-deadline");
  }
  // Progress deadline: a worker that heartbeats but never delivers is
  // wedged. Revoke the lease (another worker can run the cells); keep the
  // connection — its late results still dedup cleanly if it ever recovers.
  if (config_.progress_timeout_ms > 0) {
    for (auto& [id, worker] : workers_) {
      if (!worker.outstanding.empty() &&
          now_ms - worker.last_progress_ms > config_.progress_timeout_ms) {
        stats_.leases_expired += 1;
        c_leases_expired.add();
        reassign(worker, "progress-deadline");
      }
    }
  }
  if (!workers_.empty()) {
    last_alive_ms_ = now_ms;
  } else if (!done() &&
             now_ms - last_alive_ms_ > config_.worker_timeout_ms) {
    return fail("no live worker for " +
                std::to_string(config_.worker_timeout_ms) +
                " ms (none ever connected, or all were lost)");
  }
  return actions;
}

ControllerRunResult run_controller(
    const std::string& address, const ControllerConfig& config,
    const std::function<void(const exp::JournalEntry&)>& on_cell,
    const std::atomic<bool>* cancel) {
  Listener listener(parse_endpoint(address));
  ControllerCore core(config);
  core.on_cell_finished = on_cell;
  core.start(steady_now_ms());

  std::map<ConnId, std::unique_ptr<Stream>> streams;
  ConnId next_conn = 1;

  const auto apply = [&](const Actions& actions) {
    for (const auto& [conn, line] : actions.send) {
      const auto it = streams.find(conn);
      if (it == streams.end()) {
        continue;
      }
      if (!it->second->send_line(line)) {
        // Peer vanished mid-send; on_disconnect reassigns and emits no
        // further sends or closes.
        streams.erase(it);
        core.on_disconnect(conn, steady_now_ms());
      }
    }
    for (const ConnId conn : actions.close) {
      streams.erase(conn);
    }
  };

  const std::uint64_t drain_grace_ms =
      std::max<std::uint64_t>(1000, 4 * config.wait_hint_ms);
  std::uint64_t done_since_ms = 0;
  while (true) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      // Graceful drain: drop every connection (workers see a close and
      // exit) and surface the cancel. Journaled cells all survive — the
      // caller syncs the journal and a rerun resumes right here.
      streams.clear();
      throw exp::SweepCancelled();
    }

    std::vector<pollfd> pfds;
    std::vector<ConnId> pfd_conn;
    pfds.push_back({listener.fd(), POLLIN, 0});
    pfd_conn.push_back(0);
    bool buffered = false;
    for (const auto& [conn, stream] : streams) {
      pfds.push_back({stream->fd(), POLLIN, 0});
      pfd_conn.push_back(conn);
      buffered = buffered || stream->has_buffered_line();
    }
    ::poll(pfds.data(), pfds.size(), buffered ? 0 : 20);

    while (auto stream = listener.accept(0)) {
      const ConnId conn = next_conn++;
      streams.emplace(conn, std::move(stream));
      apply(core.on_connect(conn, steady_now_ms()));
    }

    // Readable (or line-buffered) connections: drain every complete line.
    for (std::size_t i = 1; i < pfds.size(); ++i) {
      const ConnId conn = pfd_conn[i];
      auto it = streams.find(conn);
      if (it == streams.end()) {
        continue;  // closed by an earlier action this iteration
      }
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0 &&
          !it->second->has_buffered_line()) {
        continue;
      }
      while (true) {
        it = streams.find(conn);
        if (it == streams.end()) {
          break;
        }
        std::string line;
        const Stream::Recv status = it->second->recv_line(line, 0);
        if (status == Stream::Recv::kLine) {
          apply(core.on_line(conn, line, steady_now_ms()));
          continue;
        }
        if (status == Stream::Recv::kClosed) {
          streams.erase(conn);
          apply(core.on_disconnect(conn, steady_now_ms()));
        }
        break;
      }
    }

    apply(core.on_tick(steady_now_ms()));
    if (core.failed()) {
      streams.clear();
      CHRONOS_EXPECTS(false, "fabric controller failed: " + core.error());
    }
    if (core.done()) {
      if (done_since_ms == 0) {
        done_since_ms = steady_now_ms();
      }
      // Let connected workers pick up their `done` and say bye; force the
      // issue after a short grace so one hung worker cannot stall exit.
      if (streams.empty() ||
          steady_now_ms() - done_since_ms > drain_grace_ms) {
        break;
      }
    }
  }

  ControllerRunResult result;
  result.cells = core.finished();
  result.stats = core.stats();
  // Conservation: every todo cell completed, counted exactly once.
  CHRONOS_ENSURES(result.cells.size() == config.todo.size() &&
                      result.stats.results == config.todo.size(),
                  "fabric conservation violated: " +
                      std::to_string(result.stats.results) + " results for " +
                      std::to_string(config.todo.size()) + " cells");
  return result;
}

}  // namespace chronos::fabric
