// Streaming and batch summary statistics for simulation metrics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace chronos::stats {

/// Welford streaming accumulator: numerically stable mean/variance.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample using linear interpolation between order
/// statistics. `p` in [0, 100]. Requires a non-empty sample.
double percentile(std::span<const double> values, double p);

/// Normal-approximation confidence half-width for a Bernoulli proportion
/// with `successes` out of `trials` at ~95% confidence.
double proportion_ci_halfwidth(std::uint64_t successes, std::uint64_t trials);

/// Mean of a non-empty span.
double mean_of(std::span<const double> values);

}  // namespace chronos::stats
