#include "stats/pareto.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace chronos::stats {

Pareto::Pareto(double t_min, double beta) : t_min_(t_min), beta_(beta) {
  CHRONOS_EXPECTS(t_min > 0.0, "Pareto t_min must be positive");
  CHRONOS_EXPECTS(beta > 0.0, "Pareto beta must be positive");
}

double Pareto::pdf(double t) const {
  if (t < t_min_) {
    return 0.0;
  }
  return beta_ * std::pow(t_min_, beta_) / std::pow(t, beta_ + 1.0);
}

double Pareto::cdf(double t) const { return 1.0 - survival(t); }

double Pareto::survival(double t) const {
  if (t <= t_min_) {
    return 1.0;
  }
  return std::pow(t_min_ / t, beta_);
}

double Pareto::quantile(double p) const {
  CHRONOS_EXPECTS(p >= 0.0 && p < 1.0, "quantile requires p in [0, 1)");
  return t_min_ * std::pow(1.0 - p, -1.0 / beta_);
}

double Pareto::sample(Rng& rng) const { return rng.pareto(t_min_, beta_); }

double Pareto::mean() const {
  if (beta_ <= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  return t_min_ * beta_ / (beta_ - 1.0);
}

double Pareto::variance() const {
  if (beta_ <= 2.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double b = beta_;
  return t_min_ * t_min_ * b / ((b - 1.0) * (b - 1.0) * (b - 2.0));
}

double Pareto::truncated_mean_below(double d) const {
  CHRONOS_EXPECTS(d > t_min_, "truncated_mean_below requires d > t_min");
  // E[T | T <= d] = (int_{t_min}^{d} t f(t) dt) / F(d).
  const double f_d = cdf(d);
  CHRONOS_ENSURES(f_d > 0.0, "truncation mass must be positive");
  if (beta_ == 1.0) {
    // int t f(t) dt = t_min * ln(d / t_min).
    return t_min_ * std::log(d / t_min_) / f_d;
  }
  const double num = beta_ * std::pow(t_min_, beta_) *
                     (std::pow(d, 1.0 - beta_) - std::pow(t_min_, 1.0 - beta_)) /
                     (1.0 - beta_);
  return num / f_d;
}

double Pareto::truncated_mean_above(double d) const {
  CHRONOS_EXPECTS(d >= t_min_, "truncated_mean_above requires d >= t_min");
  CHRONOS_EXPECTS(beta_ > 1.0,
                  "truncated_mean_above requires beta > 1 for finite mean");
  // Memoryless-like scaling of Pareto above d: T | T > d ~ Pareto(d, beta).
  return d * beta_ / (beta_ - 1.0);
}

double Pareto::min_of_n_mean(int n) const {
  CHRONOS_EXPECTS(n >= 1, "min_of_n_mean requires n >= 1");
  const double nb = static_cast<double>(n) * beta_;
  CHRONOS_EXPECTS(nb > 1.0, "min_of_n_mean requires n * beta > 1");
  return t_min_ * nb / (nb - 1.0);
}

Pareto Pareto::min_of_n(int n) const {
  CHRONOS_EXPECTS(n >= 1, "min_of_n requires n >= 1");
  return Pareto(t_min_, beta_ * static_cast<double>(n));
}

Pareto Pareto::scaled(double factor) const {
  CHRONOS_EXPECTS(factor > 0.0, "scaled requires a positive factor");
  return Pareto(t_min_ * factor, beta_);
}

}  // namespace chronos::stats
