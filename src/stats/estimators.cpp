#include "stats/estimators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"

namespace chronos::stats {

ParetoFit fit_pareto_mle(std::span<const double> samples) {
  CHRONOS_EXPECTS(samples.size() >= 2, "fit_pareto_mle needs >= 2 samples");
  const double t_min = *std::min_element(samples.begin(), samples.end());
  CHRONOS_EXPECTS(t_min > 0.0, "fit_pareto_mle requires positive samples");
  double log_sum = 0.0;
  for (const double x : samples) {
    log_sum += std::log(x / t_min);
  }
  CHRONOS_EXPECTS(log_sum > 0.0,
                  "fit_pareto_mle requires non-degenerate samples");
  ParetoFit fit;
  fit.t_min = t_min;
  fit.beta = static_cast<double>(samples.size()) / log_sum;
  fit.beta_stderr = fit.beta / std::sqrt(static_cast<double>(samples.size()));
  return fit;
}

double ks_statistic(std::span<const double> samples, const Pareto& model) {
  CHRONOS_EXPECTS(!samples.empty(), "ks_statistic needs samples");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = model.cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(f - lo), std::abs(f - hi)});
  }
  return d;
}

double exceedance_fraction(std::span<const double> samples, double threshold) {
  CHRONOS_EXPECTS(!samples.empty(), "exceedance_fraction needs samples");
  const auto count = std::count_if(samples.begin(), samples.end(),
                                   [&](double x) { return x > threshold; });
  return static_cast<double>(count) / static_cast<double>(samples.size());
}

}  // namespace chronos::stats
