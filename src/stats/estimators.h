// Statistical estimators used to (a) fit the Pareto task-duration model from
// observed samples (as the paper does on testbed measurements, §VII-A) and
// (b) test goodness of fit.
#pragma once

#include <span>

#include "stats/pareto.h"

namespace chronos::stats {

/// Result of a Pareto maximum-likelihood fit.
struct ParetoFit {
  double t_min = 0.0;   ///< MLE of scale: sample minimum.
  double beta = 0.0;    ///< MLE of tail index: n / sum(ln(x_i / t_min)).
  double beta_stderr = 0.0;  ///< Asymptotic standard error beta / sqrt(n).
};

/// Fits Pareto(t_min, beta) by maximum likelihood. Requires at least two
/// samples, all positive, not all equal.
ParetoFit fit_pareto_mle(std::span<const double> samples);

/// Kolmogorov–Smirnov statistic of `samples` against `model`
/// (sup-norm distance between empirical and model CDF).
double ks_statistic(std::span<const double> samples, const Pareto& model);

/// Empirical probability that a sample exceeds `threshold`.
double exceedance_fraction(std::span<const double> samples, double threshold);

}  // namespace chronos::stats
