// Fixed-bin and integer histograms. The integer histogram backs Figure 5
// (distribution of the optimal number of extra attempts r).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace chronos::stats {

/// Histogram over integer keys (e.g. optimal r values).
class IntHistogram {
 public:
  void add(long long value, std::uint64_t weight = 1);

  std::uint64_t count(long long value) const;
  std::uint64_t total() const { return total_; }

  /// Smallest/largest key observed; requires a non-empty histogram.
  long long min_key() const;
  long long max_key() const;

  /// Key with the highest count (smallest such key on ties).
  long long mode() const;

  /// (key, count) pairs in ascending key order.
  std::vector<std::pair<long long, std::uint64_t>> items() const;

  /// Fraction of mass at `value` in [0, 1]; 0 when empty.
  double fraction(long long value) const;

 private:
  std::map<long long, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Equal-width histogram over a [lo, hi) range of doubles.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1. Out-of-range samples are clamped into
  /// the first/last bin and tracked separately.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const;
  double bin_lower(std::size_t i) const;
  double bin_upper(std::size_t i) const;
  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  /// Multi-line ASCII rendering (for example binaries).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace chronos::stats
