// Generic task-duration distributions.
//
// §IV of the paper notes that the PoCD/cost analysis "actually works with
// other distributions as well". This interface carries exactly what the
// generic analysis needs — survival function, quantiles, sampling, and the
// support's lower end — with heavy-tailed and light-tailed implementations
// for sensitivity studies (bench/ablation_distribution).
#pragma once

#include <memory>
#include <string>

#include "common/rng.h"
#include "stats/pareto.h"

namespace chronos::stats {

class Distribution {
 public:
  virtual ~Distribution() = default;

  /// P(T > t). Must be 1 for t <= lower_bound() and non-increasing.
  virtual double survival(double t) const = 0;

  /// Inverse CDF; p in [0, 1).
  virtual double quantile(double p) const = 0;

  /// Start of the support (greatest t with survival(t) == 1).
  virtual double lower_bound() const = 0;

  virtual std::string name() const = 0;

  /// P(T <= t).
  double cdf(double t) const { return 1.0 - survival(t); }

  /// Inverse-CDF sampling (overridable).
  virtual double sample(Rng& rng) const { return quantile(rng.uniform()); }

  /// E[T], computed numerically from the survival function by default.
  virtual double mean() const;
};

/// Pareto(t_min, beta) — the paper's model.
class ParetoDistribution final : public Distribution {
 public:
  ParetoDistribution(double t_min, double beta) : pareto_(t_min, beta) {}
  double survival(double t) const override { return pareto_.survival(t); }
  double quantile(double p) const override { return pareto_.quantile(p); }
  double lower_bound() const override { return pareto_.t_min(); }
  double mean() const override { return pareto_.mean(); }
  std::string name() const override { return "Pareto"; }

 private:
  Pareto pareto_;
};

/// t_min + LogNormal(mu, sigma): heavy-ish tail, all moments finite.
class ShiftedLogNormal final : public Distribution {
 public:
  /// Requires shift >= 0, sigma > 0.
  ShiftedLogNormal(double shift, double mu, double sigma);
  double survival(double t) const override;
  double quantile(double p) const override;
  double lower_bound() const override { return shift_; }
  double mean() const override;
  std::string name() const override { return "ShiftedLogNormal"; }

 private:
  double shift_;
  double mu_;
  double sigma_;
};

/// t_min + Weibull(scale, shape): sub-exponential tail for shape < 1.
class ShiftedWeibull final : public Distribution {
 public:
  /// Requires shift >= 0, scale > 0, shape > 0.
  ShiftedWeibull(double shift, double scale, double shape);
  double survival(double t) const override;
  double quantile(double p) const override;
  double lower_bound() const override { return shift_; }
  double mean() const override;
  std::string name() const override { return "ShiftedWeibull"; }

 private:
  double shift_;
  double scale_;
  double shape_;
};

/// t_min + Exponential(rate): memoryless light tail.
class ShiftedExponential final : public Distribution {
 public:
  /// Requires shift >= 0, rate > 0.
  ShiftedExponential(double shift, double rate);
  double survival(double t) const override;
  double quantile(double p) const override;
  double lower_bound() const override { return shift_; }
  double mean() const override { return shift_ + 1.0 / rate_; }
  std::string name() const override { return "ShiftedExponential"; }

 private:
  double shift_;
  double rate_;
};

/// Standard normal CDF / quantile helpers used by ShiftedLogNormal.
double normal_cdf(double z);
double normal_quantile(double p);

}  // namespace chronos::stats
