#include "stats/distribution.h"

#include <cmath>

#include "common/error.h"
#include "common/numeric.h"

namespace chronos::stats {

double Distribution::mean() const {
  // E[T] = lower + int_{lower}^inf S(t) dt for non-negative T.
  const double lower = lower_bound();
  return lower + numeric::integrate_to_infinity(
                     [this](double t) { return survival(t); }, lower, 1e-9);
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double normal_quantile(double p) {
  CHRONOS_EXPECTS(p > 0.0 && p < 1.0,
                  "normal_quantile requires p in (0, 1)");
  // Acklam's rational approximation refined with one Newton step.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
         c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
         a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Newton refinement against the CDF.
  const double e = normal_cdf(x) - p;
  const double u =
      e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  return x - u / (1.0 + 0.5 * x * u);
}

ShiftedLogNormal::ShiftedLogNormal(double shift, double mu, double sigma)
    : shift_(shift), mu_(mu), sigma_(sigma) {
  CHRONOS_EXPECTS(shift >= 0.0, "shift must be non-negative");
  CHRONOS_EXPECTS(sigma > 0.0, "sigma must be positive");
}

double ShiftedLogNormal::survival(double t) const {
  if (t <= shift_) {
    return 1.0;
  }
  const double z = (std::log(t - shift_) - mu_) / sigma_;
  return 1.0 - normal_cdf(z);
}

double ShiftedLogNormal::quantile(double p) const {
  CHRONOS_EXPECTS(p >= 0.0 && p < 1.0, "quantile requires p in [0, 1)");
  if (p == 0.0) {
    return shift_;
  }
  return shift_ + std::exp(mu_ + sigma_ * normal_quantile(p));
}

double ShiftedLogNormal::mean() const {
  return shift_ + std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

ShiftedWeibull::ShiftedWeibull(double shift, double scale, double shape)
    : shift_(shift), scale_(scale), shape_(shape) {
  CHRONOS_EXPECTS(shift >= 0.0, "shift must be non-negative");
  CHRONOS_EXPECTS(scale > 0.0, "scale must be positive");
  CHRONOS_EXPECTS(shape > 0.0, "shape must be positive");
}

double ShiftedWeibull::survival(double t) const {
  if (t <= shift_) {
    return 1.0;
  }
  return std::exp(-std::pow((t - shift_) / scale_, shape_));
}

double ShiftedWeibull::quantile(double p) const {
  CHRONOS_EXPECTS(p >= 0.0 && p < 1.0, "quantile requires p in [0, 1)");
  return shift_ + scale_ * std::pow(-std::log(1.0 - p), 1.0 / shape_);
}

double ShiftedWeibull::mean() const {
  return shift_ + scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

ShiftedExponential::ShiftedExponential(double shift, double rate)
    : shift_(shift), rate_(rate) {
  CHRONOS_EXPECTS(shift >= 0.0, "shift must be non-negative");
  CHRONOS_EXPECTS(rate > 0.0, "rate must be positive");
}

double ShiftedExponential::survival(double t) const {
  if (t <= shift_) {
    return 1.0;
  }
  return std::exp(-rate_ * (t - shift_));
}

double ShiftedExponential::quantile(double p) const {
  CHRONOS_EXPECTS(p >= 0.0 && p < 1.0, "quantile requires p in [0, 1)");
  return shift_ - std::log(1.0 - p) / rate_;
}

}  // namespace chronos::stats
