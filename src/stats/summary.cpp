#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace chronos::stats {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

double percentile(std::span<const double> values, double p) {
  CHRONOS_EXPECTS(!values.empty(), "percentile needs a non-empty sample");
  CHRONOS_EXPECTS(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double proportion_ci_halfwidth(std::uint64_t successes, std::uint64_t trials) {
  CHRONOS_EXPECTS(trials > 0, "proportion CI needs at least one trial");
  CHRONOS_EXPECTS(successes <= trials, "successes cannot exceed trials");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  return 1.96 * std::sqrt(std::max(p * (1.0 - p), 1e-12) / n);
}

double mean_of(std::span<const double> values) {
  CHRONOS_EXPECTS(!values.empty(), "mean_of needs a non-empty sample");
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

}  // namespace chronos::stats
