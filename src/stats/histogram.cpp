#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace chronos::stats {

void IntHistogram::add(long long value, std::uint64_t weight) {
  counts_[value] += weight;
  total_ += weight;
}

std::uint64_t IntHistogram::count(long long value) const {
  const auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

long long IntHistogram::min_key() const {
  CHRONOS_EXPECTS(!counts_.empty(), "min_key on empty histogram");
  return counts_.begin()->first;
}

long long IntHistogram::max_key() const {
  CHRONOS_EXPECTS(!counts_.empty(), "max_key on empty histogram");
  return counts_.rbegin()->first;
}

long long IntHistogram::mode() const {
  CHRONOS_EXPECTS(!counts_.empty(), "mode on empty histogram");
  long long best_key = counts_.begin()->first;
  std::uint64_t best = 0;
  for (const auto& [key, count] : counts_) {
    if (count > best) {
      best = count;
      best_key = key;
    }
  }
  return best_key;
}

std::vector<std::pair<long long, std::uint64_t>> IntHistogram::items() const {
  return {counts_.begin(), counts_.end()};
}

double IntHistogram::fraction(long long value) const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  CHRONOS_EXPECTS(lo < hi, "Histogram requires lo < hi");
  CHRONOS_EXPECTS(bins >= 1, "Histogram requires at least one bin");
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((value - lo_) / width);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  CHRONOS_EXPECTS(i < counts_.size(), "bin index out of range");
  return counts_[i];
}

double Histogram::bin_lower(std::size_t i) const {
  CHRONOS_EXPECTS(i < counts_.size(), "bin index out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_upper(std::size_t i) const {
  return bin_lower(i) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) /
                     static_cast<double>(peak) * static_cast<double>(width)));
    os << '[';
    os.precision(4);
    os << bin_lower(i) << ", " << bin_upper(i) << ") ";
    os << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace chronos::stats
