// Pareto (Type I) distribution — the task-execution-time model the paper
// assumes throughout (Eq. 2): f(t) = beta * t_min^beta / t^{beta+1} for
// t >= t_min.
//
// Includes the closed forms the analytic core relies on:
//  - survival/cdf/quantile and inverse-CDF sampling,
//  - mean and truncated mean (used in Theorems 4 and 6, Case 1),
//  - the expectation of the minimum of n i.i.d. copies (Lemma 1).
#pragma once

#include "common/rng.h"

namespace chronos::stats {

class Pareto {
 public:
  /// Requires t_min > 0 and beta > 0.
  Pareto(double t_min, double beta);

  double t_min() const { return t_min_; }
  double beta() const { return beta_; }

  /// Probability density at t (0 for t < t_min).
  double pdf(double t) const;

  /// P(T <= t).
  double cdf(double t) const;

  /// P(T > t) = (t_min / t)^beta for t >= t_min, else 1.
  double survival(double t) const;

  /// Inverse CDF; p in [0, 1). quantile(0) == t_min.
  double quantile(double p) const;

  /// Draws one variate using `rng`.
  double sample(Rng& rng) const;

  /// E[T] = t_min * beta / (beta - 1); requires beta > 1 (infinite otherwise).
  double mean() const;

  /// Var[T]; requires beta > 2 (infinite otherwise).
  double variance() const;

  /// E[T | T <= d] for d > t_min (Theorems 4/6, Case 1). Handles beta == 1.
  double truncated_mean_below(double d) const;

  /// E[T | T > d] for d >= t_min; requires beta > 1.
  double truncated_mean_above(double d) const;

  /// E[min(T_1, ..., T_n)] = t_min * n * beta / (n * beta - 1)  (Lemma 1).
  /// Requires n >= 1 and n * beta > 1.
  double min_of_n_mean(int n) const;

  /// Distribution of min of n i.i.d. copies: Pareto(t_min, n * beta).
  Pareto min_of_n(int n) const;

  /// Scales the variate by a positive factor c: c*T ~ Pareto(c*t_min, beta).
  Pareto scaled(double factor) const;

 private:
  double t_min_;
  double beta_;
};

}  // namespace chronos::stats
