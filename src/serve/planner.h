// Planner-as-a-service: Algorithm 1 behind a request boundary (ROADMAP
// "planner-as-a-service" item; the nimbus controller/worker split is the
// exemplar shape — the planning brain is separate from execution even
// while transport stays in-process).
//
// A request is the paper's per-job planning problem — (beta, t_min, D,
// theta, spot price, policy-or-auto) — and the reply is the plan: which
// policy runs the job and with how many extra attempts r. The service
// memoizes plans in a PlanCache (exact or quantized keys; see
// plan_cache.h) and recomputes the per-request fields (spot price, tau
// timers) on every reply, so a cache hit can never leak another arrival's
// price clock.
//
// plan() serves one request; plan_batch() plans a queue of pending
// requests together, deduplicating identical keys and sharing one
// core::SharedAnalytics across all requests with the same job shape, so a
// burst of arrivals that differ only in spot price pays the
// strategy-independent constants once.
//
// Thread safety: plan() and plan_batch() may be called concurrently from
// any number of threads (lock-free cache reads, CAS-published inserts,
// relaxed stat counters). The PlannerConfig is fixed at construction —
// a config change is a new service (and thus an empty cache).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/optimizer.h"
#include "serve/plan_cache.h"
#include "trace/planner.h"

namespace chronos::serve {

/// Everything a PlannerService holds fixed across requests.
struct PlannerServiceConfig {
  trace::PlannerConfig planner;
  PlanCacheConfig cache;
};

/// One planning request. `spec` supplies the job shape (the stage vector
/// plus deadline) and receives the plan (price, and per stage tau_est /
/// tau_kill / r). Staged jobs up to serve::kMaxKeyStages stages are cached
/// like single-stage ones (the key covers the full stage vector); wider
/// DAGs are planned from scratch on every request.
struct PlanRequest {
  mapreduce::JobSpec* spec = nullptr;

  /// Spot price on the caller's clock — for an open-system arrival, the
  /// price at the arrival time, never trace-generation or retry time.
  double price = 1.0;

  /// Override for the run's theta; negative means "use the service's
  /// configured theta" (the common case).
  double theta = -1.0;

  /// On: pick the best of Clone / S-Restart / S-Resume via optimize_all.
  /// Off: plan under `policy`.
  bool auto_strategy = false;
  strategies::PolicyKind policy = strategies::PolicyKind::kSResume;
};

struct PlanReply {
  strategies::PolicyKind kind = strategies::PolicyKind::kHadoopNS;
  long long r = 0;  ///< stage-0 extra attempts (full plan is in the spec)
  bool feasible = false;
  bool cache_hit = false;
};

/// Monotone service counters (also exported as serve.* obs metrics).
struct PlannerServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t drops = 0;  ///< insert lost a race or the table was full
  std::size_t cache_size = 0;
};

class PlannerService {
 public:
  explicit PlannerService(PlannerServiceConfig config);

  /// Plans one request in place: fills spec.price / tau_est / tau_kill / r
  /// and returns the decision. With the cache off (or on a miss) this is
  /// bit-identical to trace::plan_spec / core::optimize_all; an exact-mode
  /// hit replays a plan computed from bit-identical inputs and is
  /// therefore byte-identical too.
  PlanReply plan(const PlanRequest& request);

  /// Plans a queue of pending requests together. Result- and
  /// stats-equivalent to calling plan() on each request in order, but
  /// requests sharing a cache key are planned once and requests sharing a
  /// job shape share one SharedAnalytics across their price/theta values.
  std::vector<PlanReply> plan_batch(std::vector<PlanRequest>& requests);

  const PlannerServiceConfig& config() const { return config_; }
  PlannerServiceStats stats() const;

  /// The cache key a request would be filed under (exposed for tests of
  /// the quantization-boundary behavior). Requires the spec to have at most
  /// kMaxKeyStages stages.
  PlanKey make_key(const PlanRequest& request) const;

 private:
  double effective_theta(const PlanRequest& request) const {
    return request.theta < 0.0 ? config_.planner.theta : request.theta;
  }

  /// Whether the request can go through the cache at all: the key is
  /// fixed-width, so jobs wider than kMaxKeyStages always plan uncached.
  static bool keyable(const PlanRequest& request);

  /// Plans a wider-than-keyable DAG directly into the spec (no CachedPlan
  /// round trip — its per-stage r array is fixed-width too).
  PlanReply plan_direct(const PlanRequest& request) const;

  /// Pure planning: runs the optimizer for the request without touching
  /// its spec. `shared` optionally supplies prebuilt shape constants (must
  /// match the request's to_job_params output bit-for-bit).
  CachedPlan compute(const PlanRequest& request,
                     const core::SharedAnalytics* shared) const;

  /// Writes a plan into the request's spec, recomputing price and the tau
  /// timers from the request itself (never from the cache).
  void apply(const PlanRequest& request, const CachedPlan& plan) const;

  /// Inserts into the cache, counting the insert or the drop.
  void publish(const PlanKey& key, const CachedPlan& plan);

  PlannerServiceConfig config_;
  PlanCache cache_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> drops_{0};
};

}  // namespace chronos::serve
