#include "serve/planner.h"

#include <array>
#include <bit>
#include <cstddef>
#include <unordered_map>

#include "common/error.h"
#include "obs/metrics.h"

namespace chronos::serve {

namespace {

const obs::Counter c_requests = obs::counter("serve.requests");
const obs::Counter c_hits = obs::counter("serve.hits");
const obs::Counter c_misses = obs::counter("serve.misses");
const obs::Counter c_inserts = obs::counter("serve.inserts");
const obs::Counter c_drops = obs::counter("serve.drops");
const obs::Counter c_batches = obs::counter("serve.batches");
const obs::Gauge g_size = obs::gauge("serve.size");
const obs::Timer t_plan = obs::timer("serve.plan");

struct PlanKeyHasher {
  std::size_t operator()(const PlanKey& key) const {
    return static_cast<std::size_t>(hash_key(key));
  }
};

/// Bit pattern of the analytic params a request plans against; requests
/// with equal patterns share one SharedAnalytics in plan_batch.
using ParamsKey = std::array<std::int64_t, 7>;

struct ParamsKeyHasher {
  std::size_t operator()(const ParamsKey& key) const {
    std::uint64_t hash = 1469598103934665603ull;
    for (const std::int64_t word : key) {
      for (int byte = 0; byte < 8; ++byte) {
        hash ^= (static_cast<std::uint64_t>(word) >> (8 * byte)) & 0xffu;
        hash *= 1099511628211ull;
      }
    }
    return static_cast<std::size_t>(hash);
  }
};

ParamsKey params_key(const core::JobParams& params) {
  return {params.num_tasks,
          std::bit_cast<std::int64_t>(params.deadline),
          std::bit_cast<std::int64_t>(params.t_min),
          std::bit_cast<std::int64_t>(params.beta),
          std::bit_cast<std::int64_t>(params.tau_est),
          std::bit_cast<std::int64_t>(params.tau_kill),
          std::bit_cast<std::int64_t>(params.phi_est)};
}

/// The params a request's optimizer run evaluates against (auto mode plans
/// S-Resume-style params, exactly as the open-system auto path always has).
core::JobParams request_params(const PlanRequest& request,
                               const trace::PlannerConfig& planner) {
  const core::Strategy strategy =
      request.auto_strategy ? core::Strategy::kSpeculativeResume
                            : trace::analytic_strategy(request.policy);
  return trace::to_job_params(*request.spec, planner, strategy);
}

CachedPlan single_stage_plan(strategies::PolicyKind kind, long long r,
                             bool feasible) {
  CachedPlan plan;
  plan.kind = kind;
  plan.num_stages = 1;
  plan.r[0] = r;
  plan.feasible = feasible;
  return plan;
}

}  // namespace

PlannerService::PlannerService(PlannerServiceConfig config)
    : config_(config),
      cache_(config.cache.mode == CacheMode::kOff ? 1
                                                  : config.cache.capacity) {
  config_.cache.validate();
}

PlannerServiceStats PlannerService::stats() const {
  PlannerServiceStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.drops = drops_.load(std::memory_order_relaxed);
  stats.cache_size = cache_.size();
  return stats;
}

bool PlannerService::keyable(const PlanRequest& request) {
  return request.spec->num_stages() <= kMaxKeyStages;
}

PlanKey PlannerService::make_key(const PlanRequest& request) const {
  const auto& spec = *request.spec;
  CHRONOS_EXPECTS(spec.num_stages() <= kMaxKeyStages,
                  "plan key holds at most kMaxKeyStages stages");
  PlanKey key;
  key.mode = request.auto_strategy
                 ? kAutoMode
                 : static_cast<std::uint64_t>(request.policy);
  key.num_stages = spec.num_stages();
  const double theta = effective_theta(request);
  const bool quantized = config_.cache.mode == CacheMode::kQuantized;
  const double grid = config_.cache.grid;
  const auto encode = [&](double value) {
    return quantized ? quantize_bucket(value, grid)
                     : std::bit_cast<std::int64_t>(value);
  };
  key.deadline = encode(spec.deadline);
  key.price = encode(request.price);
  key.theta = encode(theta);
  for (int s = 0; s < spec.num_stages(); ++s) {
    const auto& st = spec.stage(s);
    auto& slot = key.stages[static_cast<std::size_t>(s)];
    slot.num_tasks = st.num_tasks;
    slot.t_min = encode(st.t_min);
    slot.beta = encode(st.beta);
    for (const int dep : spec.resolved_deps(s)) {
      slot.deps |= std::uint64_t{1} << dep;
    }
  }
  return key;
}

CachedPlan PlannerService::compute(const PlanRequest& request,
                                   const core::SharedAnalytics* shared) const {
  const auto& spec = *request.spec;
  trace::PlannerConfig planner = config_.planner;
  planner.theta = effective_theta(request);
  if (spec.num_stages() > 1) {
    // Staged jobs plan on a scratch copy through the critical-path split
    // (compute stays pure; apply() writes the spec). `shared` is ignored:
    // per-stage deadlines make the stage params differ from the job-level
    // view plan_batch groups on, and plan_staged_spec shares analytics
    // across its own same-shape stages internally.
    mapreduce::JobSpec scratch = spec;
    strategies::PolicyKind kind = request.policy;
    if (request.auto_strategy) {
      // Pick the strategy on the root stage's critical-path view, then
      // plan every stage under it (one policy runs the whole job).
      const auto deadlines = trace::critical_path_split(scratch);
      const auto params =
          trace::stage_job_params(scratch.stage(0), deadlines[0], planner,
                                  core::Strategy::kSpeculativeResume);
      const auto econ = trace::stage_economics(scratch.stage(0), deadlines[0],
                                               planner, request.price);
      const auto best = core::optimize_all(params, econ, planner.optimizer);
      kind = trace::policy_of(best.strategy);
    }
    const auto staged =
        trace::plan_staged_spec(scratch, kind, planner, request.price);
    CachedPlan plan;
    plan.kind = kind;
    plan.num_stages = scratch.num_stages();
    const bool analytic = trace::has_analytic_strategy(kind);
    plan.feasible = analytic;
    for (int s = 0; s < scratch.num_stages() && s < kMaxKeyStages; ++s) {
      plan.r[static_cast<std::size_t>(s)] = scratch.stage(s).r;
      if (analytic &&
          !staged.stages[static_cast<std::size_t>(s)].feasible) {
        plan.feasible = false;
      }
    }
    return plan;
  }
  if (request.auto_strategy) {
    const auto econ = trace::to_economics(spec, planner, request.price);
    core::BestStrategy best;
    if (shared != nullptr) {
      best = core::optimize_all(*shared, econ, planner.optimizer);
    } else {
      const auto params = trace::to_job_params(
          spec, planner, core::Strategy::kSpeculativeResume);
      best = core::optimize_all(params, econ, planner.optimizer);
    }
    return single_stage_plan(trace::policy_of(best.strategy),
                             best.result.feasible ? best.result.r_opt : 1,
                             best.result.feasible);
  }
  if (!trace::has_analytic_strategy(request.policy)) {
    return single_stage_plan(request.policy, 0, false);
  }
  const core::Strategy strategy = trace::analytic_strategy(request.policy);
  const auto econ = trace::to_economics(spec, planner, request.price);
  core::OptimizationResult result;
  if (shared != nullptr) {
    const core::AnalyticContext context(strategy, *shared, econ);
    result = core::optimize(context, planner.optimizer);
  } else {
    const auto params = trace::to_job_params(spec, planner, strategy);
    result = core::optimize(strategy, params, econ, planner.optimizer);
  }
  return single_stage_plan(request.policy,
                           result.feasible ? result.r_opt : 1,
                           result.feasible);
}

void PlannerService::apply(const PlanRequest& request,
                           const CachedPlan& plan) const {
  auto& spec = *request.spec;
  spec.price = request.price;
  const bool fixed_baseline = !request.auto_strategy &&
                              !trace::has_analytic_strategy(request.policy);
  for (int s = 0; s < spec.num_stages() && s < kMaxKeyStages; ++s) {
    auto& st = spec.stage(s);
    const double tau_est = config_.planner.tau_est_factor * st.t_min;
    st.tau_kill = config_.planner.tau_kill_factor * st.t_min;
    if (fixed_baseline) {
      st.tau_est = tau_est;
      st.r = 0;
      continue;
    }
    st.tau_est =
        plan.kind == strategies::PolicyKind::kClone ? 0.0 : tau_est;
    st.r = plan.r[static_cast<std::size_t>(s)];
  }
}

void PlannerService::publish(const PlanKey& key, const CachedPlan& plan) {
  if (cache_.insert(key, plan)) {
    c_inserts.add();
    inserts_.fetch_add(1, std::memory_order_relaxed);
    g_size.update(cache_.size());
  } else {
    c_drops.add();
    drops_.fetch_add(1, std::memory_order_relaxed);
  }
}

PlanReply PlannerService::plan_direct(const PlanRequest& request) const {
  trace::PlannerConfig planner = config_.planner;
  planner.theta = effective_theta(request);
  auto& spec = *request.spec;
  strategies::PolicyKind kind = request.policy;
  if (request.auto_strategy) {
    const auto deadlines = trace::critical_path_split(spec);
    const auto params =
        trace::stage_job_params(spec.stage(0), deadlines[0], planner,
                                core::Strategy::kSpeculativeResume);
    const auto econ = trace::stage_economics(spec.stage(0), deadlines[0],
                                             planner, request.price);
    const auto best = core::optimize_all(params, econ, planner.optimizer);
    kind = trace::policy_of(best.strategy);
  }
  const auto staged = trace::plan_staged_spec(spec, kind, planner,
                                              request.price);
  bool feasible = trace::has_analytic_strategy(kind);
  if (feasible) {
    for (const auto& stage : staged.stages) {
      feasible = feasible && stage.feasible;
    }
  }
  return {kind, spec.stage(0).r, feasible, false};
}

PlanReply PlannerService::plan(const PlanRequest& request) {
  CHRONOS_EXPECTS(request.spec != nullptr, "plan request needs a spec");
  const obs::ScopedTimer timer(t_plan);
  c_requests.add();
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!keyable(request)) {
    // Wider than the fixed-width key: always planned from scratch (no hit
    // or miss is counted — the request never consults the cache).
    return plan_direct(request);
  }
  if (config_.cache.mode == CacheMode::kOff) {
    const CachedPlan plan = compute(request, nullptr);
    apply(request, plan);
    return {plan.kind, plan.r[0], plan.feasible, false};
  }
  const PlanKey key = make_key(request);
  if (const CachedPlan* cached = cache_.find(key)) {
    c_hits.add();
    hits_.fetch_add(1, std::memory_order_relaxed);
    apply(request, *cached);
    return {cached->kind, cached->r[0], cached->feasible, true};
  }
  c_misses.add();
  misses_.fetch_add(1, std::memory_order_relaxed);
  const CachedPlan plan = compute(request, nullptr);
  publish(key, plan);
  apply(request, plan);
  return {plan.kind, plan.r[0], plan.feasible, false};
}

std::vector<PlanReply> PlannerService::plan_batch(
    std::vector<PlanRequest>& requests) {
  const obs::ScopedTimer timer(t_plan);
  c_batches.add();
  const std::size_t n = requests.size();
  std::vector<PlanReply> replies(n);
  if (n == 0) {
    return replies;
  }
  c_requests.add(n);
  requests_.fetch_add(n, std::memory_order_relaxed);
  const bool cached = config_.cache.mode != CacheMode::kOff;

  // Deduplicate by cache key: each distinct key is resolved once (cache
  // hit or one optimizer run) and broadcast to every request that shares
  // it — exactly what sequential plan() calls would do, since the first
  // caller's insert turns the rest into hits.
  struct Slot {
    PlanKey key;
    CachedPlan plan;
    bool resolved = false;
    bool from_cache = false;
    std::size_t rep = 0;  ///< first request index filed under this key
  };
  // Requests wider than the fixed-width key never consult the cache; they
  // are planned individually below (kDirect marks them in slot_of).
  constexpr std::size_t kDirect = static_cast<std::size_t>(-1);

  std::vector<Slot> slots;
  slots.reserve(n);
  std::unordered_map<PlanKey, std::size_t, PlanKeyHasher> index(n);
  std::vector<std::size_t> slot_of(n);
  std::vector<char> is_first(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    CHRONOS_EXPECTS(requests[i].spec != nullptr, "plan request needs a spec");
    if (!keyable(requests[i])) {
      slot_of[i] = kDirect;
      continue;
    }
    const PlanKey key = make_key(requests[i]);
    const auto [it, fresh] = index.try_emplace(key, slots.size());
    if (fresh) {
      Slot slot;
      slot.key = key;
      slot.rep = i;
      if (cached) {
        if (const CachedPlan* hit = cache_.find(key)) {
          slot.plan = *hit;
          slot.resolved = true;
          slot.from_cache = true;
        }
      }
      slots.push_back(slot);
      is_first[i] = 1;
    }
    slot_of[i] = it->second;
  }

  // Group the unresolved slots by the bit pattern of the params their
  // optimizer run evaluates: one SharedAnalytics per job shape, shared
  // across every price/theta the batch carries for it.
  std::unordered_map<ParamsKey, std::vector<std::size_t>, ParamsKeyHasher>
      groups;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (slots[s].resolved) {
      continue;
    }
    const PlanRequest& request = requests[slots[s].rep];
    if (!request.auto_strategy &&
        !trace::has_analytic_strategy(request.policy)) {
      slots[s].plan = single_stage_plan(request.policy, 0, false);
      slots[s].plan.num_stages = request.spec->num_stages();
      slots[s].resolved = true;
      if (cached) {
        publish(slots[s].key, slots[s].plan);
      }
      continue;
    }
    if (request.spec->num_stages() > 1) {
      // Staged jobs plan against per-stage critical-path deadlines, not the
      // job-level shape the groups are keyed on; compute() handles their
      // analytics sharing internally.
      slots[s].plan = compute(request, nullptr);
      slots[s].resolved = true;
      if (cached) {
        publish(slots[s].key, slots[s].plan);
      }
      continue;
    }
    groups[params_key(request_params(request, config_.planner))]
        .push_back(s);
  }
  for (const auto& [shape, members] : groups) {
    const core::SharedAnalytics shared(
        request_params(requests[slots[members.front()].rep],
                       config_.planner));
    for (const std::size_t s : members) {
      slots[s].plan = compute(requests[slots[s].rep], &shared);
      slots[s].resolved = true;
      if (cached) {
        publish(slots[s].key, slots[s].plan);
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (slot_of[i] == kDirect) {
      replies[i] = plan_direct(requests[i]);
      continue;
    }
    const Slot& slot = slots[slot_of[i]];
    apply(requests[i], slot.plan);
    const bool hit = cached && (slot.from_cache || is_first[i] == 0);
    replies[i] =
        PlanReply{slot.plan.kind, slot.plan.r[0], slot.plan.feasible, hit};
    if (cached) {
      if (hit) {
        c_hits.add();
        hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        c_misses.add();
        misses_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return replies;
}

}  // namespace chronos::serve
