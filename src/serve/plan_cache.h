// Quantized-key plan cache for the planning service (ROADMAP
// "planner-as-a-service" item).
//
// A plan is a pure function of the planning inputs (job shape, deadline,
// spot price, theta, policy-or-auto) under a fixed PlannerConfig, so a
// long-running front-end can memoize it. The cache key is those inputs
// either bit-exact (kExact: a hit is only ever served for bit-identical
// inputs, so cached planning is byte-identical to uncached planning) or
// snapped to a geometric grid (kQuantized: continuous inputs within one
// relative bucket share a plan, trading optimality slack bounded by the
// grid width for hit rate).
//
// The table is a fixed-capacity open-addressed array of atomically
// published, immutable entries:
//
//   read    linear probe of acquire-loads; stops at the first empty slot
//           (entries are never deleted, so an empty slot proves absence
//           along the probe path). No locks, no reference counting.
//   insert  allocate the entry, CAS it into the first empty slot
//           (release). Losing a race to the same key drops the duplicate.
//   full    when the probe window is exhausted the insert is dropped and
//           the caller's freshly computed plan is simply not shared —
//           planning stays correct, only the hit rate suffers.
//
// Entries live until the cache is destroyed; there is no eviction and thus
// no reclamation problem for concurrent readers.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "strategies/policies.h"

namespace chronos::serve {

enum class CacheMode {
  kOff,       ///< no caching: every request is planned from scratch
  kExact,     ///< keys compare bit-exact: hits are byte-identical plans
  kQuantized  ///< continuous key fields snapped to a geometric grid
};

/// Configuration of the plan cache attached to a PlannerService.
struct PlanCacheConfig {
  CacheMode mode = CacheMode::kOff;

  /// Relative bucket width for kQuantized: values x, y land in the same
  /// bucket when floor(log(x)/log1p(grid)) == floor(log(y)/log1p(grid)),
  /// i.e. buckets are powers of (1 + grid) and any two values in one
  /// bucket differ by less than a factor of (1 + grid).
  double grid = 0.0;

  /// Slot count, rounded up to a power of two. The cache never grows; once
  /// a probe window is full further distinct keys are planned uncached.
  std::size_t capacity = std::size_t{1} << 16;

  void validate() const;
};

/// Geometric bucket index of a positive finite value on a (1 + grid)
/// ratio grid. Non-positive / non-finite values (which the planner rejects
/// anyway) fall back to their bit pattern so distinct oddballs never
/// collide.
std::int64_t quantize_bucket(double value, double grid);

/// Stage budget of the fixed-width cache key. Jobs with more stages bypass
/// the cache entirely (planned from scratch per request) — DAGs beyond this
/// width are rare enough that caching them is not worth a variable-length
/// key on the lock-free read path.
inline constexpr int kMaxKeyStages = 4;

/// Per-stage slice of the cache key: the stage's shape fields (encoded like
/// the job-level continuous fields — bit patterns or bucket indices) plus
/// its resolved dependency set as a bitmask over earlier stages. Two specs
/// differing in ANY stage — shape or wiring — therefore never collide.
struct PlanStageKey {
  std::int64_t num_tasks = 0;
  std::int64_t t_min = 0;
  std::int64_t beta = 0;
  std::uint64_t deps = 0;  ///< bitmask of resolved predecessor stages

  friend bool operator==(const PlanStageKey&, const PlanStageKey&) = default;
};

/// Canonical cache key: the planning mode plus every request field the plan
/// depends on, encoded as integers (bit patterns in kExact mode, bucket
/// indices in kQuantized mode). The full stage vector is keyed — stage
/// slots past num_stages stay zero-initialized. PlannerConfig knobs are
/// deliberately absent: they are fixed for the lifetime of a
/// PlannerService.
struct PlanKey {
  std::uint64_t mode = 0;  ///< PolicyKind ordinal, or kAutoMode
  std::int64_t num_stages = 0;
  std::int64_t deadline = 0;
  std::int64_t price = 0;
  std::int64_t theta = 0;
  std::array<PlanStageKey, kMaxKeyStages> stages{};

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

/// PlanKey::mode value for auto-strategy (optimize_all) requests; fixed
/// policies use their PolicyKind ordinal (0..5).
inline constexpr std::uint64_t kAutoMode = 6;

/// FNV-1a over the key's canonical integer fields (all stage slots
/// included).
std::uint64_t hash_key(const PlanKey& key);

/// The cached decision: which policy runs the job and with how many extra
/// attempts per stage. Price and the tau timer fields are deliberately NOT
/// cached — they are recomputed per request from the request's own price
/// clock and the service's tau factors, so a cache hit can never serve a
/// stale spot price or another job's timers.
struct CachedPlan {
  strategies::PolicyKind kind = strategies::PolicyKind::kHadoopNS;
  std::int64_t num_stages = 1;
  /// Final per-stage extra-attempt counts (infeasible fallback folded in);
  /// slots past num_stages stay zero.
  std::array<long long, kMaxKeyStages> r{};
  bool feasible = false;  ///< every planned stage was feasible

  friend bool operator==(const CachedPlan&, const CachedPlan&) = default;
};

/// Fixed-capacity open-addressed hash table with lock-free reads and
/// CAS-published inserts (see file comment). Thread-safe for any mix of
/// concurrent find/insert callers.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity);
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Lock-free lookup; nullptr when absent. The returned pointer stays
  /// valid until the cache is destroyed.
  const CachedPlan* find(const PlanKey& key) const;

  /// Publishes `plan` under `key`. Returns false when the key was already
  /// present (another thread won the race) or the probe window around the
  /// key's hash is full; the cache is unchanged in either case.
  bool insert(const PlanKey& key, const CachedPlan& plan);

  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Entry {
    PlanKey key;
    CachedPlan plan;
  };

  std::vector<std::atomic<Entry*>> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> size_{0};
};

}  // namespace chronos::serve
