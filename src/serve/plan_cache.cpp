#include "serve/plan_cache.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.h"

namespace chronos::serve {

namespace {

/// Longest probe sequence before an insert gives up. Bounds both the miss
/// cost on a crowded table and the clustering a full table can build up.
constexpr std::size_t kProbeWindow = 32;

}  // namespace

void PlanCacheConfig::validate() const {
  if (mode == CacheMode::kQuantized) {
    CHRONOS_EXPECTS(std::isfinite(grid) && grid > 0.0,
                    "plan cache quantization grid must be positive and finite");
  }
  if (mode != CacheMode::kOff) {
    CHRONOS_EXPECTS(capacity >= 1 && capacity <= (std::size_t{1} << 26),
                    "plan cache capacity must lie in [1, 2^26]");
  }
}

std::int64_t quantize_bucket(double value, double grid) {
  if (!(value > 0.0) || !std::isfinite(value)) {
    return std::bit_cast<std::int64_t>(value);
  }
  return static_cast<std::int64_t>(
      std::floor(std::log(value) / std::log1p(grid)));
}

std::uint64_t hash_key(const PlanKey& key) {
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (word >> (8 * byte)) & 0xffu;
      hash *= 1099511628211ull;
    }
  };
  mix(key.mode);
  mix(static_cast<std::uint64_t>(key.num_stages));
  mix(static_cast<std::uint64_t>(key.deadline));
  mix(static_cast<std::uint64_t>(key.price));
  mix(static_cast<std::uint64_t>(key.theta));
  for (const PlanStageKey& stage : key.stages) {
    mix(static_cast<std::uint64_t>(stage.num_tasks));
    mix(static_cast<std::uint64_t>(stage.t_min));
    mix(static_cast<std::uint64_t>(stage.beta));
    mix(stage.deps);
  }
  return hash;
}

PlanCache::PlanCache(std::size_t capacity) {
  std::size_t slots = 1;
  while (slots < capacity) {
    slots <<= 1;
  }
  slots_ = std::vector<std::atomic<Entry*>>(slots);
  mask_ = slots - 1;
}

PlanCache::~PlanCache() {
  for (auto& slot : slots_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

const CachedPlan* PlanCache::find(const PlanKey& key) const {
  const std::uint64_t hash = hash_key(key);
  const std::size_t window = std::min(kProbeWindow, slots_.size());
  for (std::size_t probe = 0; probe < window; ++probe) {
    const Entry* entry =
        slots_[(hash + probe) & mask_].load(std::memory_order_acquire);
    if (entry == nullptr) {
      return nullptr;  // inserts fill the first empty slot: key is absent
    }
    if (entry->key == key) {
      return &entry->plan;
    }
  }
  return nullptr;
}

bool PlanCache::insert(const PlanKey& key, const CachedPlan& plan) {
  const std::uint64_t hash = hash_key(key);
  const std::size_t window = std::min(kProbeWindow, slots_.size());
  Entry* fresh = nullptr;
  for (std::size_t probe = 0; probe < window; ++probe) {
    auto& slot = slots_[(hash + probe) & mask_];
    Entry* current = slot.load(std::memory_order_acquire);
    if (current == nullptr) {
      if (fresh == nullptr) {
        fresh = new Entry{key, plan};
      }
      Entry* expected = nullptr;
      if (slot.compare_exchange_strong(expected, fresh,
                                       std::memory_order_release,
                                       std::memory_order_acquire)) {
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      current = expected;  // lost the race; inspect the winner's entry
    }
    if (current->key == key) {
      delete fresh;
      return false;
    }
  }
  delete fresh;
  return false;  // probe window exhausted around this hash
}

}  // namespace chronos::serve
