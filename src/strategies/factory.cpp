#include <cctype>

#include "common/error.h"
#include "strategies/policies.h"

namespace chronos::strategies {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kHadoopNS:
      return "Hadoop-NS";
    case PolicyKind::kHadoopS:
      return "Hadoop-S";
    case PolicyKind::kMantri:
      return "Mantri";
    case PolicyKind::kClone:
      return "Clone";
    case PolicyKind::kSRestart:
      return "S-Restart";
    case PolicyKind::kSResume:
      return "S-Resume";
  }
  return "?";
}

std::optional<PolicyKind> policy_from_name(const std::string& name) {
  std::string lowered;
  lowered.reserve(name.size());
  for (const char c : name) {
    lowered += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (lowered == "hadoop-ns") return PolicyKind::kHadoopNS;
  if (lowered == "hadoop-s") return PolicyKind::kHadoopS;
  if (lowered == "mantri") return PolicyKind::kMantri;
  if (lowered == "clone") return PolicyKind::kClone;
  if (lowered == "s-restart") return PolicyKind::kSRestart;
  if (lowered == "s-resume") return PolicyKind::kSResume;
  return std::nullopt;
}

std::unique_ptr<mapreduce::SpeculationPolicy> make_policy(
    PolicyKind kind, const PolicyOptions& options) {
  switch (kind) {
    case PolicyKind::kHadoopNS:
      return std::make_unique<HadoopNoSpeculation>();
    case PolicyKind::kHadoopS:
      return std::make_unique<HadoopSpeculation>(options);
    case PolicyKind::kMantri:
      return std::make_unique<Mantri>(options);
    case PolicyKind::kClone:
      return std::make_unique<Clone>();
    case PolicyKind::kSRestart:
      return std::make_unique<SpeculativeRestart>();
    case PolicyKind::kSResume:
      return std::make_unique<SpeculativeResume>();
  }
  CHRONOS_ENSURES(false, "unknown policy kind");
}

}  // namespace chronos::strategies
