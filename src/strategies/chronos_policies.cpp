#include <cmath>
#include <vector>

#include "common/error.h"
#include "strategies/policies.h"

namespace chronos::strategies {

using mapreduce::SchedulerApi;

int original_active_attempt(SchedulerApi& api, int job, int task) {
  const auto active = api.active_attempts(job, task);
  if (active.empty()) {
    return -1;
  }
  int original = active.front();
  double earliest = api.attempt(job, original).request_time;
  for (const int id : active) {
    const double requested = api.attempt(job, id).request_time;
    if (requested < earliest) {
      earliest = requested;
      original = id;
    }
  }
  return original;
}

namespace {

/// True when the attempt's estimated completion (job-relative) misses the
/// job deadline; unknown estimates count as stragglers (no progress at
/// detection time is the worst signal available).
bool is_straggler(SchedulerApi& api, int job, int attempt_id) {
  const double estimate = api.estimate_completion(job, attempt_id);
  if (!std::isfinite(estimate)) {
    return true;
  }
  const auto& record = api.job(job);
  return estimate - record.submit_time > record.spec.deadline;
}

}  // namespace

void Clone::on_stage_start(int job, int stage, SchedulerApi& api) {
  // All r+1 copies were launched by the scheduler (initial_attempts); at
  // tau_kill keep the copy with the best progress score (§III, Fig. 1a).
  // The kill timer runs relative to the stage's start.
  api.schedule_after(api.spec(job).stage(stage).tau_kill,
                     [job, stage, &api] {
                       if (api.job(job).done) {
                         return;
                       }
                       for (const int task :
                            api.incomplete_stage_tasks(job, stage)) {
                         api.keep_best_progress(job, task);
                       }
                     });
}

void SpeculativeRestart::on_stage_start(int job, int stage,
                                        SchedulerApi& api) {
  const auto& st = api.spec(job).stage(stage);
  api.schedule_after(st.tau_est, [this, job, stage, &api] {
    detect(job, stage, api);
  });
  api.schedule_after(st.tau_kill, [this, job, stage, &api] {
    reap(job, stage, api);
  });
}

void SpeculativeRestart::detect(int job, int stage, SchedulerApi& api) {
  if (api.job(job).done) {
    return;
  }
  const long long extras = api.spec(job).stage(stage).r;
  for (const int task : api.incomplete_stage_tasks(job, stage)) {
    const int original = original_active_attempt(api, job, task);
    if (original < 0 || !is_straggler(api, job, original)) {
      continue;
    }
    // Launch r fresh copies that restart from byte 0; the original keeps
    // running (Fig. 1b).
    for (long long k = 0; k < extras; ++k) {
      api.launch_extra_attempt(job, task, 0.0);
    }
  }
}

void SpeculativeRestart::reap(int job, int stage, SchedulerApi& api) {
  if (api.job(job).done) {
    return;
  }
  for (const int task : api.incomplete_stage_tasks(job, stage)) {
    api.keep_best_estimate(job, task);
  }
}

void SpeculativeResume::on_stage_start(int job, int stage,
                                       SchedulerApi& api) {
  const auto& st = api.spec(job).stage(stage);
  api.schedule_after(st.tau_est, [this, job, stage, &api] {
    detect(job, stage, api);
  });
  api.schedule_after(st.tau_kill, [this, job, stage, &api] {
    reap(job, stage, api);
  });
}

void SpeculativeResume::detect(int job, int stage, SchedulerApi& api) {
  if (api.job(job).done) {
    return;
  }
  const long long extras = api.spec(job).stage(stage).r;
  for (const int task : api.incomplete_stage_tasks(job, stage)) {
    const int original = original_active_attempt(api, job, task);
    if (original < 0 || !is_straggler(api, job, original)) {
      continue;
    }
    // Work-preserving speculation (Fig. 1c): kill the straggler and launch
    // r+1 copies that resume from the anticipated byte offset (Eq. 31),
    // skipping the bytes the original would process during JVM startup.
    const double offset = api.resume_offset_for(job, original);
    api.kill_attempt(job, original);
    if (offset >= 1.0) {
      // The original would finish during the handover; nothing to resume.
      // Launch one full copy to guarantee task completion.
      api.launch_extra_attempt(job, task, 0.0);
      continue;
    }
    for (long long k = 0; k < extras + 1; ++k) {
      api.launch_extra_attempt(job, task, offset);
    }
  }
}

void SpeculativeResume::reap(int job, int stage, SchedulerApi& api) {
  if (api.job(job).done) {
    return;
  }
  for (const int task : api.incomplete_stage_tasks(job, stage)) {
    api.keep_best_estimate(job, task);
  }
}

}  // namespace chronos::strategies
