#include <cmath>
#include <vector>

#include "common/error.h"
#include "strategies/policies.h"

namespace chronos::strategies {

using mapreduce::SchedulerApi;

int original_active_attempt(SchedulerApi& api, int job, int task) {
  const auto active = api.active_attempts(job, task);
  if (active.empty()) {
    return -1;
  }
  int original = active.front();
  double earliest = api.attempt(job, original).request_time;
  for (const int id : active) {
    const double requested = api.attempt(job, id).request_time;
    if (requested < earliest) {
      earliest = requested;
      original = id;
    }
  }
  return original;
}

namespace {

/// True when the attempt's estimated completion (job-relative) misses the
/// job deadline; unknown estimates count as stragglers (no progress at
/// detection time is the worst signal available).
bool is_straggler(SchedulerApi& api, int job, int attempt_id) {
  const double estimate = api.estimate_completion(job, attempt_id);
  if (!std::isfinite(estimate)) {
    return true;
  }
  const auto& record = api.job(job);
  return estimate - record.submit_time > record.spec.deadline;
}

/// Incomplete tasks of the requested stage.
std::vector<int> stage_tasks(SchedulerApi& api, int job, Stage stage) {
  return stage == Stage::kMap ? api.incomplete_map_tasks(job)
                              : api.incomplete_reduce_tasks(job);
}

/// Extra attempts per straggler for the stage (reduce may differ, §III:
/// the stages are optimized separately).
long long stage_r(const mapreduce::JobSpec& spec, Stage stage) {
  return stage == Stage::kMap ? spec.r : spec.effective_reduce_r();
}

}  // namespace

void Clone::on_job_start(int job, SchedulerApi& api) {
  // All r+1 copies were launched by the scheduler (initial_attempts); at
  // tau_kill keep the copy with the best progress score (§III, Fig. 1a).
  api.schedule_after(api.spec(job).tau_kill, [job, &api] {
    if (api.job(job).done) {
      return;
    }
    for (const int task : api.incomplete_map_tasks(job)) {
      api.keep_best_progress(job, task);
    }
  });
}

void Clone::on_reduce_stage_start(int job, SchedulerApi& api) {
  // The scheduler has just launched r+1 copies of every reduce task; the
  // reduce-stage kill timer runs relative to the stage start.
  api.schedule_after(api.spec(job).effective_reduce_tau_kill(),
                     [job, &api] {
                       if (api.job(job).done) {
                         return;
                       }
                       for (const int task :
                            api.incomplete_reduce_tasks(job)) {
                         api.keep_best_progress(job, task);
                       }
                     });
}

void SpeculativeRestart::on_job_start(int job, SchedulerApi& api) {
  api.schedule_after(api.spec(job).tau_est, [this, job, &api] {
    detect(job, Stage::kMap, api);
  });
  api.schedule_after(api.spec(job).tau_kill, [this, job, &api] {
    reap(job, Stage::kMap, api);
  });
}

void SpeculativeRestart::on_reduce_stage_start(int job, SchedulerApi& api) {
  const auto& spec = api.spec(job);
  api.schedule_after(spec.effective_reduce_tau_est(), [this, job, &api] {
    detect(job, Stage::kReduce, api);
  });
  api.schedule_after(spec.effective_reduce_tau_kill(), [this, job, &api] {
    reap(job, Stage::kReduce, api);
  });
}

void SpeculativeRestart::detect(int job, Stage stage, SchedulerApi& api) {
  if (api.job(job).done) {
    return;
  }
  const long long extras = stage_r(api.spec(job), stage);
  for (const int task : stage_tasks(api, job, stage)) {
    const int original = original_active_attempt(api, job, task);
    if (original < 0 || !is_straggler(api, job, original)) {
      continue;
    }
    // Launch r fresh copies that restart from byte 0; the original keeps
    // running (Fig. 1b).
    for (long long k = 0; k < extras; ++k) {
      api.launch_extra_attempt(job, task, 0.0);
    }
  }
}

void SpeculativeRestart::reap(int job, Stage stage, SchedulerApi& api) {
  if (api.job(job).done) {
    return;
  }
  for (const int task : stage_tasks(api, job, stage)) {
    api.keep_best_estimate(job, task);
  }
}

void SpeculativeResume::on_job_start(int job, SchedulerApi& api) {
  api.schedule_after(api.spec(job).tau_est, [this, job, &api] {
    detect(job, Stage::kMap, api);
  });
  api.schedule_after(api.spec(job).tau_kill, [this, job, &api] {
    reap(job, Stage::kMap, api);
  });
}

void SpeculativeResume::on_reduce_stage_start(int job, SchedulerApi& api) {
  const auto& spec = api.spec(job);
  api.schedule_after(spec.effective_reduce_tau_est(), [this, job, &api] {
    detect(job, Stage::kReduce, api);
  });
  api.schedule_after(spec.effective_reduce_tau_kill(), [this, job, &api] {
    reap(job, Stage::kReduce, api);
  });
}

void SpeculativeResume::detect(int job, Stage stage, SchedulerApi& api) {
  if (api.job(job).done) {
    return;
  }
  const long long extras = stage_r(api.spec(job), stage);
  for (const int task : stage_tasks(api, job, stage)) {
    const int original = original_active_attempt(api, job, task);
    if (original < 0 || !is_straggler(api, job, original)) {
      continue;
    }
    // Work-preserving speculation (Fig. 1c): kill the straggler and launch
    // r+1 copies that resume from the anticipated byte offset (Eq. 31),
    // skipping the bytes the original would process during JVM startup.
    const double offset = api.resume_offset_for(job, original);
    api.kill_attempt(job, original);
    if (offset >= 1.0) {
      // The original would finish during the handover; nothing to resume.
      // Launch one full copy to guarantee task completion.
      api.launch_extra_attempt(job, task, 0.0);
      continue;
    }
    for (long long k = 0; k < extras + 1; ++k) {
      api.launch_extra_attempt(job, task, offset);
    }
  }
}

void SpeculativeResume::reap(int job, Stage stage, SchedulerApi& api) {
  if (api.job(job).done) {
    return;
  }
  for (const int task : stage_tasks(api, job, stage)) {
    api.keep_best_estimate(job, task);
  }
}

}  // namespace chronos::strategies
