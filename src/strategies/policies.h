// The six scheduling strategies evaluated in §VII, as SpeculationPolicy
// implementations:
//
//   Hadoop-NS  — default Hadoop, speculation disabled.
//   Hadoop-S   — default Hadoop speculation: after the first task of a job
//                finishes, periodically speculate the task whose estimated
//                completion lags the average of finished tasks the most
//                (naive progress-rate estimator, one extra attempt per task).
//   Mantri     — resource-aware restarts: when containers are idle and no
//                work waits, repeatedly duplicate tasks whose remaining time
//                exceeds the average task time by a threshold (default 30 s,
//                at most 3 extra attempts), and periodically keep only the
//                most promising attempt of each task.
//   Clone      — Chronos proactive strategy: r+1 copies of every task from
//                t = 0; at tau_kill keep the best-progress copy (§III).
//   S-Restart  — Chronos reactive strategy: at tau_est launch r fresh copies
//                of every detected straggler; at tau_kill keep the attempt
//                with the smallest estimated completion time.
//   S-Resume   — Chronos work-preserving strategy: at tau_est kill each
//                straggler and launch r+1 copies resuming from the Eq. 31
//                byte offset; at tau_kill keep the best attempt.
//
// The Chronos policies read r, tau_est and tau_kill from each StageSpec of
// the job; the optimal r is computed per stage by core::optimize (see
// trace::plan_job).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "mapreduce/scheduler.h"

namespace chronos::strategies {

enum class PolicyKind {
  kHadoopNS,
  kHadoopS,
  kMantri,
  kClone,
  kSRestart,
  kSResume,
};

/// Display name matching the paper's figures ("Hadoop-NS", "Clone", ...).
std::string to_string(PolicyKind kind);

/// Parses a policy name as used on CLIs and in sweep manifests
/// ("hadoop-ns", "s-resume", ...; case-insensitive). nullopt when unknown.
std::optional<PolicyKind> policy_from_name(const std::string& name);

/// Tunables for the baseline policies.
struct PolicyOptions {
  double check_period = 1.0;        ///< Hadoop-S / Mantri monitor period (s)
  /// Mantri duplicates a task when its remaining time exceeds the average
  /// task time by this slack. The paper uses 30 s against Google-trace-scale
  /// durations; the default here is scaled to the synthetic trace's shorter
  /// tasks so Mantri stays as aggressive as the paper describes.
  double mantri_threshold = 5.0;
  int mantri_max_extra = 3;         ///< Mantri cap on extra attempts per task
  /// Mantri's keep-best pruning runs on this slower cadence; duplicates run
  /// (and accrue machine time) until the next prune. Long enough that a
  /// fast duplicate can overtake the straggler's progress score before the
  /// prune decides.
  double mantri_prune_period = 45.0;
};

/// Instantiates a policy. The returned object is stateful per run; use one
/// instance per Scheduler.
std::unique_ptr<mapreduce::SpeculationPolicy> make_policy(
    PolicyKind kind, const PolicyOptions& options = {});

// --- concrete classes (exposed for tests) ---------------------------------

class HadoopNoSpeculation final : public mapreduce::SpeculationPolicy {
 public:
  std::string name() const override { return "Hadoop-NS"; }
};

class HadoopSpeculation final : public mapreduce::SpeculationPolicy {
 public:
  explicit HadoopSpeculation(PolicyOptions options) : options_(options) {}
  std::string name() const override { return "Hadoop-S"; }
  void on_task_completed(int job, int task,
                         mapreduce::SchedulerApi& api) override;

 private:
  void check(int job, mapreduce::SchedulerApi& api);

  PolicyOptions options_;
  std::unordered_set<int> monitoring_;  ///< jobs with an active checker
};

class Mantri final : public mapreduce::SpeculationPolicy {
 public:
  explicit Mantri(PolicyOptions options) : options_(options) {}
  std::string name() const override { return "Mantri"; }
  void on_job_start(int job, mapreduce::SchedulerApi& api) override;

 private:
  void check(int job, mapreduce::SchedulerApi& api);
  void prune(int job, mapreduce::SchedulerApi& api);

  PolicyOptions options_;
};

// The Chronos policies run once per stage: every stage arms its own
// tau_est / tau_kill timers (relative to the stage's start) when the
// scheduler fires on_stage_start — the paper applies each strategy to the
// map and reduce phases separately, which generalizes verbatim to DAGs.

class Clone final : public mapreduce::SpeculationPolicy {
 public:
  std::string name() const override { return "Clone"; }
  int initial_attempts(const mapreduce::JobSpec& spec,
                       int stage) const override {
    return static_cast<int>(spec.stage(stage).r) + 1;
  }
  void on_stage_start(int job, int stage,
                      mapreduce::SchedulerApi& api) override;
};

class SpeculativeRestart final : public mapreduce::SpeculationPolicy {
 public:
  std::string name() const override { return "S-Restart"; }
  void on_stage_start(int job, int stage,
                      mapreduce::SchedulerApi& api) override;

 private:
  void detect(int job, int stage, mapreduce::SchedulerApi& api);
  void reap(int job, int stage, mapreduce::SchedulerApi& api);
};

class SpeculativeResume final : public mapreduce::SpeculationPolicy {
 public:
  std::string name() const override { return "S-Resume"; }
  void on_stage_start(int job, int stage,
                      mapreduce::SchedulerApi& api) override;

 private:
  void detect(int job, int stage, mapreduce::SchedulerApi& api);
  void reap(int job, int stage, mapreduce::SchedulerApi& api);
};

/// Shared helper: id of the earliest-launched active attempt of `task`,
/// or -1 when none is active.
int original_active_attempt(mapreduce::SchedulerApi& api, int job, int task);

}  // namespace chronos::strategies
