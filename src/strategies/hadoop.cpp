#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"
#include "strategies/policies.h"

namespace chronos::strategies {

using mapreduce::EstimatorKind;
using mapreduce::SchedulerApi;

void HadoopSpeculation::on_task_completed(int job, int /*task*/,
                                          SchedulerApi& api) {
  if (api.job(job).done) {
    return;
  }
  // Hadoop only speculates after at least one task of the job has finished;
  // the first completion arms the periodic checker.
  if (!monitoring_.insert(job).second) {
    return;
  }
  api.schedule_after(options_.check_period,
                     [this, job, &api] { check(job, api); });
}

void HadoopSpeculation::check(int job, SchedulerApi& api) {
  if (api.job(job).done) {
    monitoring_.erase(job);
    return;
  }
  const double submit = api.job(job).submit_time;

  // Hadoop speculates each stage separately: a stage becomes eligible once
  // at least one of its own tasks has finished, and estimates are compared
  // against that stage's average completion time.
  const auto& job_record = api.job(job);
  const auto stages = static_cast<std::size_t>(job_record.spec.num_stages());
  std::vector<double> stage_sum(stages, 0.0);
  std::vector<int> stage_count(stages, 0);
  for (int t = 0; t < job_record.spec.total_tasks(); ++t) {
    const auto& task_record = job_record.tasks[static_cast<std::size_t>(t)];
    if (task_record.completed) {
      const auto stage =
          static_cast<std::size_t>(job_record.stage_of_task(t));
      stage_sum[stage] += task_record.completion_time;
      ++stage_count[stage];
    }
  }

  // Find the running task whose estimated completion exceeds the average
  // completion time of finished tasks by the largest amount; speculate it
  // (one extra attempt per task, like default Hadoop).
  int worst_task = -1;
  double worst_gap = 0.0;
  for (const int task : api.incomplete_tasks(job)) {
    const auto& record = api.job(job);
    if (record.tasks[static_cast<std::size_t>(task)]
            .extra_attempts_launched > 0) {
      continue;  // already speculated
    }
    const auto stage = static_cast<std::size_t>(record.stage_of_task(task));
    if (stage_count[stage] == 0) {
      continue;  // no finished task in this stage yet
    }
    const double average =
        stage_sum[stage] / static_cast<double>(stage_count[stage]);
    const auto active = api.active_attempts(job, task);
    if (active.empty()) {
      continue;
    }
    const double estimate = api.estimate_completion(
        job, active.front(), EstimatorKind::kHadoopNaive);
    if (!std::isfinite(estimate)) {
      continue;  // no progress yet; Hadoop has nothing to extrapolate
    }
    const double gap = (estimate - submit) - average;
    if (gap > worst_gap) {
      worst_gap = gap;
      worst_task = task;
    }
  }
  if (worst_task >= 0) {
    api.launch_extra_attempt(job, worst_task, 0.0);
  }
  api.schedule_after(options_.check_period,
                     [this, job, &api] { check(job, api); });
}

void Mantri::on_job_start(int job, SchedulerApi& api) {
  api.schedule_after(options_.check_period,
                     [this, job, &api] { check(job, api); });
  api.schedule_after(options_.mantri_prune_period,
                     [this, job, &api] { prune(job, api); });
}

void Mantri::prune(int job, SchedulerApi& api) {
  if (api.job(job).done) {
    return;
  }
  // "Leaves one attempt with the best progress running": keep the attempt
  // with the highest reported progress score; unreported (still-starting)
  // attempts are spared so fresh copies get a chance. Runs on a slower
  // cadence than the launch check: duplicates accrue machine time until the
  // next prune — Mantri's aggressive launch-and-kill cycle is what makes it
  // expensive in §VII-B.
  for (const int task : api.incomplete_tasks(job)) {
    const auto active = api.active_attempts(job, task);
    if (active.size() < 2) {
      continue;
    }
    int best = -1;
    double best_progress = -1.0;
    std::vector<int> reported;
    for (const int id : active) {
      // Spare duplicates younger than half a prune period: they have not
      // had a fair chance to overtake yet.
      if (api.now() - api.attempt(job, id).launch_time <
          0.5 * options_.mantri_prune_period) {
        continue;
      }
      const auto report = api.observe(job, id);
      if (!report.available) {
        continue;
      }
      reported.push_back(id);
      if (report.progress > best_progress) {
        best_progress = report.progress;
        best = id;
      }
    }
    if (reported.size() < 2) {
      continue;
    }
    for (const int id : reported) {
      if (id != best) {
        api.kill_attempt(job, id);
      }
    }
  }
  api.schedule_after(options_.mantri_prune_period,
                     [this, job, &api] { prune(job, api); });
}

void Mantri::check(int job, SchedulerApi& api) {
  if (api.job(job).done) {
    return;
  }
  const double submit = api.job(job).submit_time;
  const double now = api.now();
  const double average = api.mean_completed_task_time(job);

  // Launch: Mantri restarts outliers only when the cluster has spare
  // capacity and nothing queues for it, duplicating tasks whose remaining
  // time exceeds the average task time by `mantri_threshold`, up to
  // `mantri_max_extra` extra attempts per task.
  if (average > 0.0) {
    for (const int task : api.incomplete_tasks(job)) {
      if (!api.cluster_has_idle_container() ||
          api.cluster_pending_requests() > 0) {
        break;
      }
      const auto& record = api.job(job);
      if (record.tasks[static_cast<std::size_t>(task)]
              .extra_attempts_launched >= options_.mantri_max_extra) {
        continue;
      }
      const auto active = api.active_attempts(job, task);
      if (active.empty()) {
        continue;
      }
      double best_remaining = std::numeric_limits<double>::infinity();
      for (const int id : active) {
        const double estimate = api.estimate_completion(job, id);
        if (std::isfinite(estimate)) {
          best_remaining = std::min(best_remaining, estimate - now);
        }
      }
      if (!std::isfinite(best_remaining)) {
        // Nothing has reported yet; fall back to elapsed-time heuristic:
        // the task has been running since submit with no progress.
        best_remaining = (now - submit);
      }
      if (best_remaining > average + options_.mantri_threshold) {
        api.launch_extra_attempt(job, task, 0.0);
      }
    }
  }
  api.schedule_after(options_.check_period,
                     [this, job, &api] { check(job, api); });
}

}  // namespace chronos::strategies
